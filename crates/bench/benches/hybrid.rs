//! Criterion throughput benchmarks of hybrid gate-pulse serving.
//!
//! These back the hybrid-serving acceptance bar recorded in
//! `BENCH_hybrid.json`: a repeated-shape hybrid QAOA counts sweep served
//! through `hgp_serve` (one compiled shape, trajectory sampling) must be
//! **>= 2x faster** than the pre-serving hybrid path — naive per-job
//! compilation (`HybridModel` construction: per-layer Hamiltonian
//! routing, SABRE placement, mixer pulse calibration, noise model)
//! followed by a one-off exact density walk per evaluation, which is
//! what every hybrid evaluation paid before hybrid programs joined the
//! compiled/served/trajectory stack.
//!
//! Both paths produce noisy measurement counts under the same
//! calibrated noise model; the served trajectory counts are pinned
//! bit-identical to sequential `Executor::sample_trajectories` runs and
//! statistically convergent to the exact walk by
//! `crates/serve/tests/hybrid_serving.rs` (and the recorded schedule
//! itself replays the exact walk bit-for-bit —
//! `hgp_core::executor` tests). The compile/bind microbenches expose
//! the amortization split: shape work once, `O(gates + qubits)` binding
//! per dispatch.
//!
//! The gap widens fast with width (the density walk is `O(4^n)` per
//! instruction, a trajectory shot `O(2^n)`): see `BENCH_noise.json` for
//! the 12-qubit trajectory-vs-density ratio (242x).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_core::compile::{CircuitCompiler, HybridShape};
use hgp_core::models::{GateModelOptions, HybridModel, VqaModel};
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_serve::{JobRequest, JobSpec, ServeConfig, Service};

const N_JOBS: usize = 24;
const SHOTS: usize = 64;
const LAYOUT6: [usize; 6] = [1, 2, 3, 4, 5, 7];

fn shape() -> (Backend, HybridShape) {
    let backend = Backend::ibmq_toronto();
    let shape = HybridShape::new(instances::task1_three_regular_6(), 1)
        .with_options(GateModelOptions::optimized());
    (backend, shape)
}

/// Full hybrid parameter points (`[gamma, theta, phase/freq trims]`),
/// deterministic in the point index.
fn parameter_points(shape: &HybridShape, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let mut x = Vec::with_capacity(shape.n_params());
            for _layer in 0..shape.p() {
                x.push(0.05 + 0.02 * i as f64);
                x.push(0.60 - 0.005 * i as f64);
                for q in 0..shape.n_qubits() {
                    x.push(0.01 * q as f64);
                    x.push(0.02 * i as f64 / n as f64);
                }
            }
            x
        })
        .collect()
}

/// The pre-serving hybrid path: every parameter point pays a fresh
/// model compilation and a one-off `O(4^n)` exact density walk before
/// sampling its counts.
fn bench_naive_density_24x(c: &mut Criterion) {
    let (backend, shape) = shape();
    let points = parameter_points(&shape, N_JOBS);
    c.bench_function("hybrid_naive_compile_density_24x_qaoa6", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (i, params) in points.iter().enumerate() {
                let model = HybridModel::with_options(
                    &backend,
                    black_box(shape.graph()),
                    shape.p(),
                    LAYOUT6.to_vec(),
                    shape.options(),
                )
                .expect("connected region");
                let exec = model.compiled().executor(&backend);
                let program = model.build(params);
                let counts = model.interpret_counts(&exec.sample(&program, SHOTS, i as u64));
                acc += counts.total();
            }
            acc
        })
    });
}

/// The same sweep served: one compiled hybrid shape (warm cache),
/// `O(2^n)`-per-shot trajectory sampling through the worker pool.
fn bench_served_trajectory_24x(c: &mut Criterion) {
    let (backend, shape) = shape();
    let points = parameter_points(&shape, N_JOBS);
    let mut service = Service::new(&backend, ServeConfig::new(LAYOUT6.to_vec()));
    // Warm the cache: the steady-state serving regime is what's measured.
    service.run(JobRequest::hybrid(
        shape.clone(),
        points[0].clone(),
        JobSpec::HybridTrajectoryCounts { shots: SHOTS },
    ));
    c.bench_function("hybrid_served_trajectory_batch_24x_qaoa6", |b| {
        b.iter(|| {
            let requests: Vec<JobRequest> = points
                .iter()
                .map(|x| {
                    JobRequest::hybrid(
                        black_box(&shape).clone(),
                        x.clone(),
                        JobSpec::HybridTrajectoryCounts { shots: SHOTS },
                    )
                })
                .collect();
            service.run_batch(requests)
        })
    });
}

/// The amortized cost: one hybrid shape compilation (what every cache
/// hit saves).
fn bench_compile_hybrid_once(c: &mut Criterion) {
    let (backend, shape) = shape();
    let compiler = CircuitCompiler::new(&backend, LAYOUT6.to_vec());
    c.bench_function("hybrid_compile_shape_qaoa6", |b| {
        b.iter(|| {
            compiler
                .compile_hybrid(black_box(&shape))
                .expect("compiles")
        })
    });
}

/// The per-dispatch cost the compiled artifact leaves behind: binding a
/// parameter vector (gate `gamma` substitution + mixer pulse
/// integration).
fn bench_bind_once(c: &mut Criterion) {
    let (backend, shape) = shape();
    let compiled = CircuitCompiler::new(&backend, LAYOUT6.to_vec())
        .compile_hybrid(&shape)
        .expect("compiles");
    let params = parameter_points(&shape, 1).pop().expect("one point");
    c.bench_function("hybrid_bind_point_qaoa6", |b| {
        b.iter(|| compiled.bind(black_box(&params)))
    });
}

criterion_group!(
    hybrid,
    bench_naive_density_24x,
    bench_served_trajectory_24x,
    bench_compile_hybrid_once,
    bench_bind_once
);
criterion_main!(hybrid);
