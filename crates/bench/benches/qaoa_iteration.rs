//! Criterion benchmark of one full machine-in-loop cost evaluation — the
//! unit of work the training loop repeats 50+ times per experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_bench::region_for;
use hgp_core::models::{GateModel, GateModelOptions, HybridModel, VqaModel};
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn bench_gate_iteration(c: &mut Criterion) {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = region_for(&backend, 6);
    let model =
        GateModel::new(&backend, &graph, 1, region, GateModelOptions::raw()).expect("region");
    let exec = Executor::new(&backend, model.layout().to_vec());
    let eval = CostEvaluator::new(&graph);
    let params = model.initial_params();
    c.bench_function("gate_model_cost_eval_6q", |b| {
        b.iter(|| {
            let counts = exec.sample(&model.build(black_box(&params)), 1024, 7);
            eval.approximation_ratio(&model.interpret_counts(&counts))
        })
    });
}

fn bench_hybrid_iteration(c: &mut Criterion) {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = region_for(&backend, 6);
    let model = HybridModel::new(&backend, &graph, 1, region).expect("region");
    let exec = Executor::new(&backend, model.layout().to_vec());
    let eval = CostEvaluator::new(&graph);
    let params = model.initial_params();
    c.bench_function("hybrid_model_cost_eval_6q", |b| {
        b.iter(|| {
            let counts = exec.sample(&model.build(black_box(&params)), 1024, 7);
            eval.approximation_ratio(&model.interpret_counts(&counts))
        })
    });
}

fn bench_hybrid_iteration_8q(c: &mut Criterion) {
    let backend = Backend::ibmq_montreal();
    let graph = instances::task3_three_regular_8();
    let region = region_for(&backend, 8);
    let model = HybridModel::new(&backend, &graph, 1, region).expect("region");
    let exec = Executor::new(&backend, model.layout().to_vec());
    let eval = CostEvaluator::new(&graph);
    let params = model.initial_params();
    c.bench_function("hybrid_model_cost_eval_8q", |b| {
        b.iter(|| {
            let counts = exec.sample(&model.build(black_box(&params)), 1024, 7);
            eval.approximation_ratio(&model.interpret_counts(&counts))
        })
    });
}

criterion_group! {
    name = qaoa;
    config = Criterion::default().sample_size(20);
    targets = bench_gate_iteration, bench_hybrid_iteration, bench_hybrid_iteration_8q
}
criterion_main!(qaoa);
