//! Criterion benchmarks of the op-fused trajectory replay subsystem.
//!
//! These back the acceptance bar recorded in `BENCH_replay.json`:
//!
//! - **per-shot replay vs the reference engine**: a 12-qubit noisy QAOA
//!   expectation from 256 stochastic trajectories, run (a) on the
//!   compiled [`ReplayProgram`] tape via [`ReplayEngine`] and (b) on the
//!   recorded [`TrajectoryProgram`] via the reference
//!   [`TrajectoryEngine`]. Both paths are pinned bit-identical by
//!   `crates/sim/tests/replay_parity.rs`; the replay path must be
//!   **>= 3x** faster per shot (it removes per-shot statevector
//!   allocation, per-op matrix derivation, the generic branch-weight
//!   block machinery, and the per-shot re-evaluation of the diagonal
//!   observable),
//! - **template bind vs the full schedule walk**: the per-dispatch cost
//!   of producing an executable replay tape from a parameter binding —
//!   `CompiledCircuit::bind_replay` (clone the compile-time tape,
//!   substitute the parametric slots) vs bind + ASAP walk + tape
//!   compile (the path it replaces, ~0.5 ms/job of pure re-derivation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hgp_core::compile::CircuitCompiler;
use hgp_core::qaoa::{cost_hamiltonian, qaoa_circuit};
use hgp_device::Backend;
use hgp_graph::generators;
use hgp_sim::{ReplayEngine, ReplayProgram, TrajectoryEngine};

/// A 12-qubit path in `ibmq_guadalupe`'s heavy-hex coupling map (the
/// same region the noise benches compile into).
const LAYOUT_12Q: [usize; 12] = [0, 1, 2, 3, 5, 8, 11, 14, 13, 12, 10, 7];

const SHOTS: usize = 256;
const PARAMS: [f64; 2] = [0.35, 0.25];

/// 256 trajectories of the noisy 12q QAOA layer on the compiled replay
/// tape (template-bound outside the loop — the serving hot path).
fn bench_replay_per_shot(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(12, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_12Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("12q shape compiles");
    let exec = compiled.executor(&backend);
    let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
    let replay = compiled.bind_replay(&exec, &PARAMS);
    // A single 256-shot run takes seconds at 12 qubits; a local
    // small-sample Criterion bounds the bench's wall clock (the group's
    // shared config cannot shrink per target).
    let mut slow = Criterion::default().sample_size(5);
    slow.bench_function("replay_expectation_12q_256shots", |b| {
        b.iter(|| ReplayEngine::new(SHOTS, 11).expectation(black_box(&replay), &obs))
    });
    let _ = c;
}

/// The same 256 trajectories through the batched SoA shot-block path —
/// bit-identical to the scalar replay loop (pinned by
/// `crates/sim/tests/replay_batch_parity.rs`), amortizing tape decode,
/// matrix loads, and channel-table reads across the resident shots of
/// each cache-sized block. Must be **>= 2x** faster per shot than the
/// scalar `replay_expectation_12q_256shots` entry. Also emits the
/// machine metadata line (`meta:replay`) the checked-in baseline's
/// `host`/`workload` fields are filled from.
fn bench_replay_batched_per_shot(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(12, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_12Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("12q shape compiles");
    let exec = compiled.executor(&backend);
    let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
    let replay = compiled.bind_replay(&exec, &PARAMS);
    let engine = ReplayEngine::new(SHOTS, 11);
    hgp_bench::emit_bench_meta("meta:replay", engine.block_size_for(&replay));
    // More samples than the scalar entry: the batched path's shorter
    // iterations leave its median more exposed to scheduler noise on
    // shared hosts, and the derived speedup divides by this median.
    let mut slow = Criterion::default().sample_size(9);
    slow.bench_function("replay_batched_expectation_12q_256shots", |b| {
        b.iter(|| engine.expectation_batched(black_box(&replay), &obs))
    });
    let _ = c;
}

/// The same 256 trajectories on the recorded program via the reference
/// engine — the per-shot path replay replaces (bit-identical results).
fn bench_trajectory_per_shot(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(12, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_12Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("12q shape compiles");
    let exec = compiled.executor(&backend);
    let obs = compiled.wire_observable(&cost_hamiltonian(&graph));
    let recorded = exec.trajectory_program(&compiled.bind(&PARAMS));
    let mut slow = Criterion::default().sample_size(3);
    slow.bench_function("trajectory_expectation_12q_256shots", |b| {
        b.iter(|| TrajectoryEngine::new(SHOTS, 11).expectation(black_box(&recorded), &obs))
    });
    let _ = c;
}

/// Producing an executable tape per dispatch: template substitution vs
/// the full bind + schedule walk + tape compile it replaces.
fn bench_bind_paths(c: &mut Criterion) {
    let backend = Backend::ibmq_guadalupe();
    let graph = generators::random_regular(12, 3, 7);
    let compiled = CircuitCompiler::new(&backend, LAYOUT_12Q.to_vec())
        .compile(&qaoa_circuit(&graph, 1))
        .expect("12q shape compiles");
    let exec = compiled.executor(&backend);
    c.bench_function("replay_template_bind_12q", |b| {
        b.iter(|| compiled.bind_replay(&exec, black_box(&PARAMS)))
    });
    c.bench_function("replay_schedule_walk_12q", |b| {
        b.iter(|| {
            ReplayProgram::compile(&exec.trajectory_program(&compiled.bind(black_box(&PARAMS))))
        })
    });
}

criterion_group!(
    replay,
    bench_replay_per_shot,
    bench_replay_batched_per_shot,
    bench_trajectory_per_shot,
    bench_bind_paths
);
criterion_main!(replay);
