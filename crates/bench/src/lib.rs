#![forbid(unsafe_code)]

//! Experiment harness shared utilities.
//!
//! Each paper table/figure has a binary under `src/bin/` (see DESIGN.md's
//! experiment index); this library carries the pieces they share: the
//! fixed qubit regions per backend, result-table formatting, and the
//! standard experiment configurations.

use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::Graph;

/// The fixed logical-to-physical regions used by all experiments (the
/// paper fixes the qubit mapping for fair comparison). Regions are
/// connected heavy-hex patches.
pub fn region_for(backend: &Backend, n: usize) -> Vec<usize> {
    match (backend.n_qubits(), n) {
        // 27q Falcon: a connected patch around the central ring.
        (27, 6) => vec![1, 2, 3, 4, 5, 7],
        (27, 8) => vec![1, 2, 3, 4, 5, 7, 8, 10],
        // 16q Falcon.
        (16, 6) => vec![0, 1, 2, 3, 4, 5],
        (16, 8) => vec![0, 1, 2, 3, 4, 5, 7, 8],
        _ => hgp_core::models::default_region(backend, n),
    }
}

/// The paper's training setup: COBYLA max 50 evaluations, 1024 shots.
pub fn paper_train_config() -> TrainConfig {
    TrainConfig::default()
}

/// Appends a machine-emitted metadata line to the criterion JSONL sink
/// (`CRITERION_OUTPUT`, the same file the vendored harness appends
/// results to) recording the measured execution configuration — OS,
/// architecture, rayon worker count, and the shot-block size of the
/// batched replay path — so the `host`/`workload` fields of the checked-
/// in `BENCH_*.json` baselines carry observed values instead of prose,
/// and baselines from different hosts stay comparable.
pub fn emit_bench_meta(id: &str, shot_block_size: usize) {
    use std::io::Write as _;
    let os = std::env::consts::OS;
    let arch = std::env::consts::ARCH;
    let threads = rayon::current_num_threads();
    println!("{id}: os={os} arch={arch} rayon_threads={threads} shot_block_size={shot_block_size}");
    let path = std::env::var("CRITERION_OUTPUT")
        .unwrap_or_else(|_| "target/criterion-results.jsonl".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            file,
            "{{\"id\":\"{}\",\"os\":\"{os}\",\"arch\":\"{arch}\",\"rayon_threads\":{threads},\"shot_block_size\":{shot_block_size}}}",
            id.replace('"', "'"),
        );
    }
}

/// Formats an AR as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Runs one training configuration of the Table II grid.
pub fn table2_cell(
    backend: &Backend,
    graph: &Graph,
    hybrid: bool,
    gate_opt: bool,
    m3: bool,
    cvar: bool,
    pulse_opt_duration: Option<u32>,
) -> TrainResult {
    use hgp_core::models::{GateModel, GateModelOptions, HybridModel, VqaModel};
    let region = region_for(backend, graph.n_nodes());
    let options = if gate_opt {
        GateModelOptions::optimized()
    } else {
        GateModelOptions::raw()
    };
    let mut config = paper_train_config();
    config.use_m3 = m3;
    config.cvar_alpha = if cvar { Some(0.3) } else { None };
    if hybrid {
        let mut model =
            HybridModel::with_options(backend, graph, 1, region, options).expect("valid region");
        if let Some(d) = pulse_opt_duration {
            model = model.with_mixer_duration(d);
        }
        let _ = model.mixer_duration_dt();
        train(&model, graph, &config)
    } else {
        let model = GateModel::new(backend, graph, 1, region, options).expect("valid region");
        train(&model, graph, &config)
    }
}

/// Seeds used when averaging runs (training-trajectory luck moves single
/// runs by 2-3% AR, the same order as the effects under study, so the
/// headline tables report means over independent seeds).
pub const AVG_SEEDS: [u64; 3] = [42, 1042, 2042];

/// Mean `(configured AR, plain-expectation AR)` of a Table II cell over
/// [`AVG_SEEDS`].
#[allow(clippy::too_many_arguments)]
pub fn table2_cell_avg(
    backend: &Backend,
    graph: &Graph,
    hybrid: bool,
    gate_opt: bool,
    m3: bool,
    cvar: bool,
    pulse_opt_duration: Option<u32>,
) -> (f64, f64) {
    let mut ar = 0.0;
    let mut exp = 0.0;
    for &seed in &AVG_SEEDS {
        let r = table2_cell_seeded(
            backend,
            graph,
            hybrid,
            gate_opt,
            m3,
            cvar,
            pulse_opt_duration,
            seed,
        );
        ar += r.approximation_ratio;
        exp += r.expectation_ar;
    }
    let n = AVG_SEEDS.len() as f64;
    (ar / n, exp / n)
}

/// Runs one training configuration of the Table II grid with an explicit
/// seed.
#[allow(clippy::too_many_arguments)]
pub fn table2_cell_seeded(
    backend: &Backend,
    graph: &Graph,
    hybrid: bool,
    gate_opt: bool,
    m3: bool,
    cvar: bool,
    pulse_opt_duration: Option<u32>,
    seed: u64,
) -> TrainResult {
    use hgp_core::models::{GateModel, GateModelOptions, HybridModel};
    let region = region_for(backend, graph.n_nodes());
    let options = if gate_opt {
        GateModelOptions::optimized()
    } else {
        GateModelOptions::raw()
    };
    let mut config = paper_train_config();
    config.seed = seed;
    config.use_m3 = m3;
    config.cvar_alpha = if cvar { Some(0.3) } else { None };
    if hybrid {
        let mut model =
            HybridModel::with_options(backend, graph, 1, region, options).expect("valid region");
        if let Some(d) = pulse_opt_duration {
            model = model.with_mixer_duration(d);
        }
        train(&model, graph, &config)
    } else {
        let model = GateModel::new(backend, graph, 1, region, options).expect("valid region");
        train(&model, graph, &config)
    }
}
