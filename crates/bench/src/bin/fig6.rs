//! Fig. 6: optimized gate-level vs optimized hybrid gate-pulse model on
//! `ibmq_toronto` and `ibmq_montreal`, over the three benchmark tasks.
//!
//! Both models receive gate-level optimization and M3; the hybrid
//! additionally receives pulse-level (duration) optimization — the
//! paper's "optimized" configuration. Paper reference values:
//!
//! | backend  | task1 (gate/hyb) | task2 | task3 |
//! |----------|------------------|-------|-------|
//! | toronto  | 51.3 / 60.1      | 51.4 / 57.1 | 59.7 / 62.9 |
//! | montreal | 74.0 / 78.3      | 75.9 / 80.0 | 62.9 / 65.8 |

use hgp_bench::{paper_train_config, pct, region_for};
use hgp_core::models::{GateModel, GateModelOptions, HybridModel};
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn main() {
    let backends = [Backend::ibmq_toronto(), Backend::ibmq_montreal()];
    println!("Fig. 6: optimized gate-level vs optimized hybrid gate-pulse\n");
    println!(
        "{:<12}{:<28}{:>12}{:>12}{:>14}",
        "backend", "task", "gate AR", "hybrid AR", "hyb mixer"
    );
    for backend in &backends {
        for (name, graph, _) in instances::all_tasks() {
            let region = region_for(backend, graph.n_nodes());
            let mut config = paper_train_config();
            config.use_m3 = true;
            // Optimized gate-level model: GO + M3.
            let gate = GateModel::new(
                backend,
                &graph,
                1,
                region.clone(),
                GateModelOptions::optimized(),
            )
            .expect("region");
            let r_gate = train(&gate, &graph, &config);
            // Optimized hybrid: GO + M3 + PO (duration search).
            let hybrid = HybridModel::with_options(
                backend,
                &graph,
                1,
                region,
                GateModelOptions::optimized(),
            )
            .expect("region");
            let search = search_min_duration(&hybrid, &graph, &config, 32, 320, 0.02);
            let optimized = hybrid.clone_with_duration(search.best_duration_dt);
            let r_hyb = train(&optimized, &graph, &config);
            println!(
                "{:<12}{:<28}{:>12}{:>12}{:>14}",
                backend.name().trim_start_matches("ibmq_"),
                name,
                pct(r_gate.approximation_ratio),
                pct(r_hyb.approximation_ratio),
                format!("{}dt", r_hyb.mixer_duration_dt)
            );
        }
    }
    println!("\n(the paper's hybrid wins every backend x task pair; see module docs for values)");
}
