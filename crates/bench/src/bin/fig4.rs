//! Fig. 4: the QAOA Max-Cut benchmark graphs.
//!
//! Prints the three benchmark instances with their exact optima
//! (brute-forced), matching the paper's annotations
//! (Max-Cut = 9, 8, 10).

use hgp_graph::{brute_force, instances};

fn main() {
    println!("Fig. 4: graphs used in the QAOA Max-Cut benchmark\n");
    for (name, graph, expected) in instances::all_tasks() {
        let best = brute_force(&graph);
        println!("{name}");
        println!("  nodes: {}  edges: {}", graph.n_nodes(), graph.n_edges());
        print!("  edge list:");
        for e in graph.edges() {
            print!(" ({},{})", e.u, e.v);
        }
        println!();
        println!(
            "  Max-Cut = {} (paper: {})  optimal assignment: {:0width$b}",
            best.value,
            expected,
            best.assignment,
            width = graph.n_nodes()
        );
        assert_eq!(best.value, expected, "instance must match the paper");
        println!();
    }
}
