//! Table I: calibration data of the four backends.
//!
//! Regenerates the paper's Table I from the device models, plus the
//! derived orderings the paper's analysis relies on.

use hgp_device::Backend;

fn main() {
    let backends = Backend::paper_backends();
    // The header names columns positionally; pin the backend order so a
    // future reordering of paper_backends() cannot mislabel the table.
    let order = [
        "ibm_auckland",
        "ibmq_toronto",
        "ibmq_guadalupe",
        "ibmq_montreal",
    ];
    assert_eq!(backends.len(), order.len(), "backend count");
    for (b, expect) in backends.iter().zip(order) {
        assert_eq!(b.name(), expect, "column order must match the header");
    }
    println!("Table I: calibration data of quantum computers (device models)");
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}",
        "", "auckland", "toronto", "guadalupe", "montreal"
    );
    let row = |label: &str, f: &dyn Fn(&Backend) -> String| {
        print!("{label:<22}");
        for b in &backends {
            print!("{:>12}", f(b));
        }
        println!();
    };
    row("# qubit", &|b| format!("{}", b.n_qubits()));
    row("Pauli-X error", &|b| {
        format!("{:.3e}", b.calibration().x_error)
    });
    row("CNOT error", &|b| {
        format!("{:.3e}", b.calibration().cx_error)
    });
    row("Readout error", &|b| {
        format!("{:.3}", b.calibration().readout_error)
    });
    row("T1 time (us)", &|b| format!("{:.2}", b.calibration().t1_us));
    row("T2 time (us)", &|b| format!("{:.2}", b.calibration().t2_us));
    row("Readout length (ns)", &|b| {
        format!("{:.1}", b.calibration().readout_length_ns)
    });
    println!();
    println!("Derived checks (paper's analysis):");
    let cx: Vec<(f64, &str)> = backends
        .iter()
        .map(|b| (b.calibration().cx_error, b.name()))
        .collect();
    let best_cx = cx
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .expect("nonempty");
    println!(
        "  lowest CNOT error:    {} (expect ibmq_toronto)",
        best_cx.1
    );
    let ro: Vec<(f64, &str)> = backends
        .iter()
        .map(|b| (b.calibration().readout_error, b.name()))
        .collect();
    let best_ro = ro
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .expect("nonempty");
    println!(
        "  lowest readout error: {} (expect ibm_auckland)",
        best_ro.1
    );
}
