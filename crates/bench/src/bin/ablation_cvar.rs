//! Ablation: AR vs CVaR fraction `alpha`.
//!
//! The paper fixes `alpha = 0.3`; this sweep shows the trade-off it
//! sits on: small alpha sharpens the reported ratio (best shots only)
//! while alpha = 1 recovers the plain expectation.

use hgp_bench::{paper_train_config, pct, region_for};
use hgp_core::models::HybridModel;
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = region_for(&backend, 6);
    let model = HybridModel::new(&backend, &graph, 1, region).expect("region");
    println!("Ablation: hybrid CVaR-alpha sweep (ibmq_toronto, task 1)\n");
    println!("{:>8}{:>12}{:>16}", "alpha", "CVaR AR", "expectation AR");
    for alpha in [0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
        let mut config = paper_train_config();
        config.cvar_alpha = Some(alpha);
        let r = train(&model, &graph, &config);
        println!(
            "{:>8}{:>12}{:>16}",
            alpha,
            pct(r.approximation_ratio),
            pct(r.expectation_ar)
        );
    }
    println!("\npaper setting: alpha = 0.3");
}
