//! Ablation: approximation ratio vs mixer pulse duration.
//!
//! Sweeps the full 32 dt grid (where the paper only reports the binary
//! search's endpoint) to show *why* binary search is safe: AR is flat
//! down to the duration where the amplitude bound starts clipping the
//! required mixer angle, then falls off.

use hgp_bench::{paper_train_config, pct, region_for};
use hgp_core::models::HybridModel;
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = region_for(&backend, 6);
    let base = HybridModel::new(&backend, &graph, 1, region).expect("region");
    let config = paper_train_config();
    println!("Ablation: hybrid AR vs mixer pulse duration (ibmq_toronto, task 1)\n");
    println!("{:>12}{:>10}{:>16}", "duration", "AR", "pulse area cap");
    for duration in (1..=10).map(|k| 32 * k) {
        let model = base.clone_with_duration(duration);
        let r = train(&model, &graph, &config);
        // Largest mixer angle reachable within the amplitude bound.
        let area = model.mixer_waveform().area();
        let max_angle = 0.5 * 0.125 * area;
        println!(
            "{:>10}dt{:>10}{:>13.2} rad",
            duration,
            pct(r.expectation_ar),
            max_angle
        );
    }
    println!("\npaper: binary search settles at 128 dt with no significant AR change");
}
