//! Ablation: which pulse parameters earn the hybrid model its edge?
//!
//! The paper motivates exposing amplitude, phase, *and* frequency
//! (§IV-A.1). This ablation trains the hybrid with the per-qubit trims
//! selectively frozen at zero, isolating each parameter family's
//! contribution. Frozen parameters still exist in the vector (same
//! optimizer dimensionality) but are ignored by the build.

use hgp_bench::{paper_train_config, pct, region_for};
use hgp_core::models::{GateModel, GateModelOptions, HybridModel, VqaModel};
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;
use hgp_graph::Graph;

/// Wraps a hybrid model, zeroing selected per-qubit trim parameters.
struct FrozenTrims<'a> {
    inner: HybridModel<'a>,
    allow_phase: bool,
    allow_freq: bool,
}

impl VqaModel for FrozenTrims<'_> {
    fn backend(&self) -> &Backend {
        VqaModel::backend(&self.inner)
    }
    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }
    fn region_size(&self) -> usize {
        self.inner.region_size()
    }
    fn n_params(&self) -> usize {
        self.inner.n_params()
    }
    fn initial_params(&self) -> Vec<f64> {
        self.inner.initial_params()
    }
    fn build(&self, params: &[f64]) -> Program {
        let per_layer = self.inner.params_per_layer();
        let n = self.inner.n_qubits();
        let mut masked = params.to_vec();
        for layer in 0..self.inner.p() {
            for l in 0..n {
                if !self.allow_phase {
                    masked[layer * per_layer + 2 + 2 * l] = 0.0;
                }
                if !self.allow_freq {
                    masked[layer * per_layer + 2 + 2 * l + 1] = 0.0;
                }
            }
        }
        self.inner.build(&masked)
    }
    fn layout(&self) -> &[usize] {
        self.inner.layout()
    }
    fn interpret_counts(&self, counts: &hgp_sim::Counts) -> hgp_sim::Counts {
        self.inner.interpret_counts(counts)
    }
    fn mixer_duration_dt(&self) -> u32 {
        self.inner.mixer_duration_dt()
    }
}

fn run(backend: &Backend, graph: &Graph, allow_phase: bool, allow_freq: bool) -> f64 {
    let region = region_for(backend, graph.n_nodes());
    let inner = HybridModel::new(backend, graph, 1, region).expect("region");
    let model = FrozenTrims {
        inner,
        allow_phase,
        allow_freq,
    };
    train(&model, graph, &paper_train_config()).expectation_ar
}

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    println!("Ablation: hybrid pulse-parameter families (ibmq_toronto, task 1)\n");
    let region = region_for(&backend, 6);
    let gate =
        GateModel::new(&backend, &graph, 1, region, GateModelOptions::raw()).expect("region");
    let r_gate = train(&gate, &graph, &paper_train_config());
    println!(
        "{:<42}{:>8}",
        "gate-level baseline",
        pct(r_gate.expectation_ar)
    );
    for (label, phase, freq) in [
        ("amplitude only (trims frozen)", false, false),
        ("amplitude + phase", true, false),
        ("amplitude + frequency", false, true),
        ("amplitude + phase + frequency (full)", true, true),
    ] {
        let ar = run(&backend, &graph, phase, freq);
        println!("{label:<42}{:>8}", pct(ar));
    }
    println!("\nexpected shape: each trim family adds AR; the full set is best (paper §IV-A.1)");
}
