//! Table II: hybrid gate-pulse vs gate-level QAOA across backends.
//!
//! Rows: Raw AR, GO AR (gate optimization), M3 AR (measurement
//! mitigation), CVaR AR (alpha = 0.3), and the mixer layer durations with
//! and without Step I. Columns: `ibm_auckland`, `ibmq_toronto`,
//! `ibmq_guadalupe` x {gate, hybrid}, as in the paper.

use hgp_bench::{pct, region_for, table2_cell_avg};
use hgp_core::models::HybridModel;
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn main() {
    let backends = [
        Backend::ibm_auckland(),
        Backend::ibmq_toronto(),
        Backend::ibmq_guadalupe(),
    ];
    let graph = instances::task1_three_regular_6();
    println!("Table II: 3-regular 6-node Max-Cut, p = 1 QAOA\n");
    print!("{:<14}", "");
    for b in &backends {
        let short = b
            .name()
            .trim_start_matches("ibmq_")
            .trim_start_matches("ibm_");
        print!(
            "{:>14}{:>14}",
            format!("{short}(gate)"),
            format!("{short}(hyb)")
        );
    }
    println!();

    let mut rows: Vec<(&str, Vec<String>)> = Vec::new();
    let configs: [(&str, bool, bool, bool); 4] = [
        ("Raw AR", false, false, false),
        ("GO AR", true, false, false),
        ("M3 AR", true, true, false),
        ("CVaR AR", true, true, true),
    ];
    for (label, go, m3, cvar) in configs {
        let mut cells = Vec::new();
        for backend in &backends {
            for hybrid in [false, true] {
                let (ar, _) = table2_cell_avg(backend, &graph, hybrid, go, m3, cvar, None);
                cells.push(pct(ar));
            }
        }
        rows.push((label, cells));
    }
    // Duration rows.
    let mut raw_dur = Vec::new();
    let mut po_dur = Vec::new();
    for backend in &backends {
        raw_dur.push("320dt".to_owned());
        raw_dur.push("320dt".to_owned());
        po_dur.push("-".to_owned());
        let region = region_for(backend, 6);
        let model = HybridModel::new(backend, &graph, 1, region).expect("region");
        let cfg = hgp_bench::paper_train_config();
        let search = search_min_duration(&model, &graph, &cfg, 32, 320, 0.02);
        po_dur.push(format!("{}dt", search.best_duration_dt));
    }
    rows.push(("Raw mixer", raw_dur));
    rows.push(("PO mixer", po_dur));

    for (label, cells) in rows {
        print!("{label:<14}");
        for c in cells {
            print!("{c:>14}");
        }
        println!();
    }
    println!("\npaper reference (gate, hybrid):");
    println!("  Raw AR : auckland 49.1/54.2, toronto 48.8/54.1, guadalupe 50.5/54.5");
    println!("  GO AR  : auckland 53.3/55.7, toronto 49.9/57.3, guadalupe 52.4/55.9");
    println!("  M3 AR  : auckland 50.8/55.5, toronto 51.3/60.1, guadalupe 53.8/56.8");
    println!("  CVaR AR: auckland 63.8/73.5, toronto 72.3/84.3, guadalupe 75.0/76.1");
    println!("  PO mixer duration: 128dt on all three");
}
