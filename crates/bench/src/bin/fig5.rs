//! Fig. 5: pulse-level model vs hybrid gate-pulse model on
//! `ibmq_toronto` (3-regular 6-node Max-Cut), plus the pulse-level
//! duration optimization.
//!
//! The paper reports: pulse-level model 52.2% AR, hybrid 54.3%, hybrid +
//! pulse-level optimization 54.1% with the mixer layer reduced from
//! 320 dt to 128 dt, and ~4x faster convergence for the hybrid.

use hgp_bench::{paper_train_config, pct, region_for};
use hgp_core::models::{HybridModel, PulseModel, VqaModel};
use hgp_core::prelude::*;
use hgp_device::Backend;
use hgp_graph::instances;

fn main() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = region_for(&backend, 6);
    let config = paper_train_config();

    println!("Fig. 5: inference on ibmq_toronto, 3-regular 6-node Max-Cut\n");

    // Pulse-level model (VQP-style: every physical pulse trainable).
    let pulse = PulseModel::new(&backend, &graph, 1, region.clone()).expect("region");
    let r_pulse = train(&pulse, &graph, &config);

    // Hybrid gate-pulse model, raw 320 dt mixer.
    let hybrid = HybridModel::new(&backend, &graph, 1, region.clone()).expect("region");
    let r_hybrid = train(&hybrid, &graph, &config);

    // Step I: binary search for the mixer duration, then retrain.
    let search = search_min_duration(&hybrid, &graph, &config, 32, 320, 0.02);
    let optimized = hybrid.clone_with_duration(search.best_duration_dt);
    let r_po = train(&optimized, &graph, &config);

    println!(
        "{:<38}{:>10}{:>14}{:>12}",
        "model", "AR", "mixer (dt)", "evals"
    );
    println!(
        "{:<38}{:>10}{:>14}{:>12}",
        "pulse-level model",
        pct(r_pulse.expectation_ar),
        r_pulse.mixer_duration_dt,
        r_pulse.n_evals
    );
    println!(
        "{:<38}{:>10}{:>14}{:>12}",
        "hybrid gate-pulse model",
        pct(r_hybrid.expectation_ar),
        r_hybrid.mixer_duration_dt,
        r_hybrid.n_evals
    );
    println!(
        "{:<38}{:>10}{:>14}{:>12}",
        "hybrid + pulse-level optimization",
        pct(r_po.expectation_ar),
        r_po.mixer_duration_dt,
        r_po.n_evals
    );
    println!("\npaper reference: 52.2% / 54.3% / 54.1%; durations 320/320/128 dt");
    println!(
        "\nduration search record: baseline AR {} at 320 dt; evaluated {:?}",
        pct(search.baseline_ar),
        search
            .evaluated
            .iter()
            .map(|(d, ar)| format!("{d}dt:{}", pct(*ar)))
            .collect::<Vec<_>>()
    );
    println!(
        "\nconvergence: hybrid spent {} evaluations ({} to converge); the pulse-level \
         model spent {} ({}x more) and landed lower — the paper's 'larger parameter \
         space, longer convergence' effect ({} vs {} trainable parameters)",
        r_hybrid.n_evals,
        r_hybrid.iterations_to_converge,
        r_pulse.n_evals,
        r_pulse.n_evals / r_hybrid.n_evals.max(1),
        pulse.n_params(),
        hybrid.n_params(),
    );
}
