//! The gate set and its unitary matrices.
//!
//! Two-qubit gate matrices are written in the basis `|q_a q_b>` where `q_a`
//! (the first operand) is the most-significant bit — the same convention
//! [`hgp_math::Matrix::embed`] expects for its `targets` slice.

use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

use serde::{Deserialize, Serialize};

use hgp_math::{c64, Complex64, Matrix};

use crate::param::Param;

/// A quantum gate, possibly parametrized.
///
/// ```
/// use hgp_circuit::Gate;
/// let h = Gate::H;
/// assert!(h.matrix().expect("bound").is_unitary(1e-12));
/// assert_eq!(Gate::CX.n_qubits(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity (explicit idle).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{i pi/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X (the native IBM basis 1q pulse gate).
    SX,
    /// Rotation about X: `exp(-i theta X / 2)`.
    Rx(Param),
    /// Rotation about Y: `exp(-i theta Y / 2)`.
    Ry(Param),
    /// Rotation about Z: `exp(-i theta Z / 2)` (virtual, zero duration).
    Rz(Param),
    /// General single-qubit gate `U3(theta, phi, lambda)`.
    U3(Param, Param, Param),
    /// Controlled-X; operand order is `(control, target)`.
    CX,
    /// Controlled-Z (symmetric).
    CZ,
    /// SWAP.
    Swap,
    /// Two-qubit ZZ interaction `exp(-i theta Z(x)Z / 2)`.
    Rzz(Param),
    /// Cross-resonance rotation `exp(-i theta Z(x)X / 2)`; operand order is
    /// `(control, target)`. The hardware-native two-qubit interaction.
    Rzx(Param),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn n_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::SX
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::U3(..) => 1,
            Gate::CX | Gate::CZ | Gate::Swap | Gate::Rzz(_) | Gate::Rzx(_) => 2,
        }
    }

    /// The gate's parameters (empty for non-parametrized gates).
    pub fn params(&self) -> Vec<Param> {
        match *self {
            Gate::Rx(p) | Gate::Ry(p) | Gate::Rz(p) | Gate::Rzz(p) | Gate::Rzx(p) => vec![p],
            Gate::U3(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// Whether every parameter of the gate is bound.
    pub fn is_bound(&self) -> bool {
        self.params().iter().all(Param::is_bound)
    }

    /// Returns a copy with free parameters bound against `params`.
    pub fn bind(&self, params: &[f64]) -> Gate {
        match *self {
            Gate::Rx(p) => Gate::Rx(p.bind(params)),
            Gate::Ry(p) => Gate::Ry(p.bind(params)),
            Gate::Rz(p) => Gate::Rz(p.bind(params)),
            Gate::Rzz(p) => Gate::Rzz(p.bind(params)),
            Gate::Rzx(p) => Gate::Rzx(p.bind(params)),
            Gate::U3(t, p, l) => Gate::U3(t.bind(params), p.bind(params), l.bind(params)),
            g => g,
        }
    }

    /// The unitary matrix, if all parameters are bound.
    ///
    /// Returns `None` when the gate still contains free parameters.
    pub fn matrix(&self) -> Option<Matrix> {
        self.matrix_with(&[])
    }

    /// The unitary matrix, evaluating free parameters against `params`.
    ///
    /// Returns `None` only when a free parameter's id is out of range of
    /// `params`.
    pub fn matrix_with(&self, params: &[f64]) -> Option<Matrix> {
        let eval = |p: &Param| -> Option<f64> {
            match *p {
                Param::Bound(v) => Some(v),
                Param::Free { id, scale, offset } => params.get(id.0).map(|&v| scale * v + offset),
            }
        };
        let m = match self {
            Gate::I => Matrix::identity(2),
            Gate::X => Matrix::from_rows(&[
                &[Complex64::ZERO, Complex64::ONE],
                &[Complex64::ONE, Complex64::ZERO],
            ]),
            Gate::Y => Matrix::from_rows(&[
                &[Complex64::ZERO, c64(0.0, -1.0)],
                &[Complex64::I, Complex64::ZERO],
            ]),
            Gate::Z => Matrix::from_diag(&[Complex64::ONE, c64(-1.0, 0.0)]),
            Gate::H => Matrix::from_rows(&[
                &[c64(FRAC_1_SQRT_2, 0.0), c64(FRAC_1_SQRT_2, 0.0)],
                &[c64(FRAC_1_SQRT_2, 0.0), c64(-FRAC_1_SQRT_2, 0.0)],
            ]),
            Gate::S => Matrix::from_diag(&[Complex64::ONE, Complex64::I]),
            Gate::Sdg => Matrix::from_diag(&[Complex64::ONE, c64(0.0, -1.0)]),
            Gate::T => {
                Matrix::from_diag(&[Complex64::ONE, Complex64::cis(std::f64::consts::FRAC_PI_4)])
            }
            Gate::Tdg => {
                Matrix::from_diag(&[Complex64::ONE, Complex64::cis(-std::f64::consts::FRAC_PI_4)])
            }
            Gate::SX => Matrix::from_rows(&[
                &[c64(0.5, 0.5), c64(0.5, -0.5)],
                &[c64(0.5, -0.5), c64(0.5, 0.5)],
            ]),
            Gate::Rx(p) => {
                let t = eval(p)? / 2.0;
                Matrix::from_rows(&[
                    &[c64(t.cos(), 0.0), c64(0.0, -t.sin())],
                    &[c64(0.0, -t.sin()), c64(t.cos(), 0.0)],
                ])
            }
            Gate::Ry(p) => {
                let t = eval(p)? / 2.0;
                Matrix::from_rows(&[
                    &[c64(t.cos(), 0.0), c64(-t.sin(), 0.0)],
                    &[c64(t.sin(), 0.0), c64(t.cos(), 0.0)],
                ])
            }
            Gate::Rz(p) => {
                let t = eval(p)? / 2.0;
                Matrix::from_diag(&[Complex64::cis(-t), Complex64::cis(t)])
            }
            Gate::U3(theta, phi, lam) => {
                let t = eval(theta)? / 2.0;
                let p = eval(phi)?;
                let l = eval(lam)?;
                Matrix::from_rows(&[
                    &[c64(t.cos(), 0.0), Complex64::cis(l).scale(-t.sin())],
                    &[
                        Complex64::cis(p).scale(t.sin()),
                        Complex64::cis(p + l).scale(t.cos()),
                    ],
                ])
            }
            Gate::CX => Matrix::from_rows(&[
                &[
                    Complex64::ONE,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ONE,
                    Complex64::ZERO,
                    Complex64::ZERO,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ONE,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ONE,
                    Complex64::ZERO,
                ],
            ]),
            Gate::CZ => Matrix::from_diag(&[
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ONE,
                c64(-1.0, 0.0),
            ]),
            Gate::Swap => Matrix::from_rows(&[
                &[
                    Complex64::ONE,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ONE,
                    Complex64::ZERO,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ONE,
                    Complex64::ZERO,
                    Complex64::ZERO,
                ],
                &[
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::ONE,
                ],
            ]),
            Gate::Rzz(p) => {
                let t = eval(p)? / 2.0;
                Matrix::from_diag(&[
                    Complex64::cis(-t),
                    Complex64::cis(t),
                    Complex64::cis(t),
                    Complex64::cis(-t),
                ])
            }
            Gate::Rzx(p) => {
                // exp(-i t/2 Z(x)X) with the first operand (MSB) carrying Z.
                let t = eval(p)? / 2.0;
                let (c, s) = (t.cos(), t.sin());
                Matrix::from_rows(&[
                    &[c64(c, 0.0), c64(0.0, -s), Complex64::ZERO, Complex64::ZERO],
                    &[c64(0.0, -s), c64(c, 0.0), Complex64::ZERO, Complex64::ZERO],
                    &[Complex64::ZERO, Complex64::ZERO, c64(c, 0.0), c64(0.0, s)],
                    &[Complex64::ZERO, Complex64::ZERO, c64(0.0, s), c64(c, 0.0)],
                ])
            }
        };
        Some(m)
    }

    /// The inverse gate, when it exists in the gate set.
    pub fn inverse(&self) -> Option<Gate> {
        Some(match *self {
            Gate::I => Gate::I,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::H => Gate::H,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => return None, // SXdg is not in the set
            Gate::Rx(p) => Gate::Rx(p.scaled(-1.0)),
            Gate::Ry(p) => Gate::Ry(p.scaled(-1.0)),
            Gate::Rz(p) => Gate::Rz(p.scaled(-1.0)),
            Gate::U3(..) => return None,
            Gate::CX => Gate::CX,
            Gate::CZ => Gate::CZ,
            Gate::Swap => Gate::Swap,
            Gate::Rzz(p) => Gate::Rzz(p.scaled(-1.0)),
            Gate::Rzx(p) => Gate::Rzx(p.scaled(-1.0)),
        })
    }

    /// Whether the gate is self-inverse (used by gate cancellation).
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            Gate::I | Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::CX | Gate::CZ | Gate::Swap
        )
    }

    /// Whether the gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::CZ
                | Gate::Rzz(_)
        )
    }

    /// Lower-case mnemonic, matching OpenQASM where applicable.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U3(..) => "u3",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::Swap => "swap",
            Gate::Rzz(_) => "rzz",
            Gate::Rzx(_) => "rzx",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            write!(f, "{}(", self.name())?;
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamId;
    use std::f64::consts::PI;

    #[test]
    fn all_fixed_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::CX,
            Gate::CZ,
            Gate::Swap,
        ];
        for g in gates {
            let m = g.matrix().expect("bound");
            assert!(m.is_unitary(1e-12), "{g} not unitary");
            assert_eq!(m.rows(), 1 << g.n_qubits());
        }
    }

    #[test]
    fn parametrized_gates_are_unitary() {
        for theta in [-2.0, 0.0, 0.5, PI, 7.2] {
            for g in [
                Gate::Rx(Param::bound(theta)),
                Gate::Ry(Param::bound(theta)),
                Gate::Rz(Param::bound(theta)),
                Gate::Rzz(Param::bound(theta)),
                Gate::Rzx(Param::bound(theta)),
                Gate::U3(Param::bound(theta), Param::bound(0.3), Param::bound(-1.1)),
            ] {
                assert!(g.matrix().expect("bound").is_unitary(1e-12), "{g}");
            }
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::SX.matrix().unwrap();
        let x = Gate::X.matrix().unwrap();
        assert!(sx.matmul(&sx).approx_eq(&x, 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let rx = Gate::Rx(Param::bound(PI)).matrix().unwrap();
        let x = Gate::X.matrix().unwrap();
        assert!(rx.approx_eq_up_to_phase(&x, 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(theta, -pi/2, pi/2) = RX(theta).
        let theta = 0.77;
        let u3 = Gate::U3(
            Param::bound(theta),
            Param::bound(-PI / 2.0),
            Param::bound(PI / 2.0),
        )
        .matrix()
        .unwrap();
        let rx = Gate::Rx(Param::bound(theta)).matrix().unwrap();
        assert!(u3.approx_eq_up_to_phase(&rx, 1e-12));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Gate::H.matrix().unwrap();
        let x = Gate::X.matrix().unwrap();
        let z = Gate::Z.matrix().unwrap();
        assert!(h.matmul(&x).matmul(&h).approx_eq(&z, 1e-12));
    }

    #[test]
    fn rzz_from_cx_rz_cx() {
        // RZZ(t) = CX * (I (x) RZ(t)) * CX with control as MSB.
        let t = 1.3;
        let cx = Gate::CX.matrix().unwrap();
        let rz = Gate::Rz(Param::bound(t)).matrix().unwrap();
        let irz = Matrix::identity(2).kron(&rz);
        let composed = cx.matmul(&irz).matmul(&cx);
        let rzz = Gate::Rzz(Param::bound(t)).matrix().unwrap();
        assert!(composed.approx_eq(&rzz, 1e-12));
    }

    #[test]
    fn rzx_is_generated_by_zx() {
        use hgp_math::expm::expi_hermitian;
        use hgp_math::pauli::{sigma_x, sigma_z};
        let t = 0.9;
        let zx = sigma_z().kron(&sigma_x());
        let expect = expi_hermitian(&zx, -t / 2.0);
        let got = Gate::Rzx(Param::bound(t)).matrix().unwrap();
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn inverse_gates_compose_to_identity() {
        let gates = [
            Gate::S,
            Gate::T,
            Gate::Rx(Param::bound(0.4)),
            Gate::Rzz(Param::bound(-1.2)),
            Gate::CX,
        ];
        for g in gates {
            let inv = g.inverse().expect("has inverse");
            let prod = g.matrix().unwrap().matmul(&inv.matrix().unwrap());
            assert!(
                prod.approx_eq(&Matrix::identity(prod.rows()), 1e-12),
                "{g} inverse failed"
            );
        }
    }

    #[test]
    fn binding_free_parameters() {
        let g = Gate::Rx(Param::free(ParamId(0)).scaled(2.0));
        assert!(!g.is_bound());
        let bound = g.bind(&[0.5]);
        assert!(bound.is_bound());
        let m = bound.matrix().unwrap();
        let expect = Gate::Rx(Param::bound(1.0)).matrix().unwrap();
        assert!(m.approx_eq(&expect, 1e-15));
    }

    #[test]
    fn matrix_with_evaluates_free_params() {
        let g = Gate::Rz(Param::free(ParamId(1)));
        assert!(g.matrix().is_none());
        let m = g.matrix_with(&[0.0, 0.8]).unwrap();
        let expect = Gate::Rz(Param::bound(0.8)).matrix().unwrap();
        assert!(m.approx_eq(&expect, 1e-15));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(Param::bound(0.3)).is_diagonal());
        assert!(Gate::Rzz(Param::bound(0.3)).is_diagonal());
        assert!(Gate::CZ.is_diagonal());
        assert!(!Gate::Rx(Param::bound(0.3)).is_diagonal());
        assert!(!Gate::CX.is_diagonal());
    }
}
