#![forbid(unsafe_code)]

//! Gate-level quantum circuit intermediate representation.
//!
//! This crate defines the gate-level abstraction layer of the hybrid
//! gate-pulse workspace:
//!
//! - [`Gate`]: the gate set (Cliffords, rotations, `U3`, `CX`, `RZZ`, ...)
//!   with exact unitary matrices,
//! - [`Param`]: bound or free parameters, so circuits can be built once and
//!   bound per optimizer iteration,
//! - [`Circuit`]: an ordered instruction list with builder-style helpers,
//!   parameter binding, and (for small circuits) direct unitary
//!   construction,
//! - [`dag::CircuitDag`]: a wire-structured view used by optimization
//!   passes,
//! - [`qasm`]: OpenQASM 2 export.
//!
//! Qubit `0` is the least-significant bit of computational-basis indices
//! throughout the workspace.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//!
//! let mut qc = Circuit::new(2);
//! qc.h(0).cx(0, 1);
//! let u = qc.unitary().expect("all parameters bound");
//! assert!(u.is_unitary(1e-12));
//! ```

pub mod circuit;
pub mod dag;
pub mod gate;
pub mod param;
pub mod qasm;

pub use circuit::{Circuit, Instruction};
pub use gate::Gate;
pub use param::{Param, ParamId};
