//! OpenQASM 2 export.
//!
//! Circuits interchange with the wider quantum toolchain through OpenQASM.
//! Only export is provided; the workspace never needs to parse QASM.

use std::fmt::Write as _;

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// Error returned when a circuit cannot be exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportQasmError {
    /// The circuit still contains free parameters.
    UnboundParameter {
        /// Index of the offending instruction.
        instruction: usize,
    },
}

impl std::fmt::Display for ExportQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportQasmError::UnboundParameter { instruction } => {
                write!(f, "instruction {instruction} has unbound parameters")
            }
        }
    }
}

impl std::error::Error for ExportQasmError {}

/// Serializes a bound circuit to OpenQASM 2.
///
/// `rzz` and `rzx` are emitted as `gate` definitions in the header since
/// they are not part of `qelib1.inc`.
///
/// # Errors
///
/// Returns [`ExportQasmError::UnboundParameter`] if any gate parameter is
/// free.
///
/// ```
/// use hgp_circuit::{Circuit, qasm::to_qasm};
/// let mut qc = Circuit::new(2);
/// qc.h(0).cx(0, 1).measure_all();
/// let text = to_qasm(&qc)?;
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0],q[1];"));
/// # Ok::<(), hgp_circuit::qasm::ExportQasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, ExportQasmError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let uses_rzz = circuit
        .instructions()
        .iter()
        .any(|i| matches!(i.gate(), Some(Gate::Rzz(_))));
    let uses_rzx = circuit
        .instructions()
        .iter()
        .any(|i| matches!(i.gate(), Some(Gate::Rzx(_))));
    if uses_rzz {
        out.push_str("gate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }\n");
    }
    if uses_rzx {
        out.push_str(
            "gate rzx(theta) a,b { h b; cx a,b; rz(theta) b; cx a,b; h b; }\n",
        );
    }
    let n = circuit.n_qubits();
    let _ = writeln!(out, "qreg q[{n}];");
    let n_cbits = circuit
        .instructions()
        .iter()
        .filter_map(|i| match i {
            Instruction::Measure { cbit, .. } => Some(cbit + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    if n_cbits > 0 {
        let _ = writeln!(out, "creg c[{n_cbits}];");
    }
    for (idx, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                let params = gate.params();
                if !params.iter().all(|p| p.is_bound()) {
                    return Err(ExportQasmError::UnboundParameter { instruction: idx });
                }
                out.push_str(gate.name());
                if !params.is_empty() {
                    out.push('(');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", p.value().expect("checked bound"));
                    }
                    out.push(')');
                }
                out.push(' ');
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "q[{q}]");
                }
                out.push_str(";\n");
            }
            Instruction::Barrier { qubits } => {
                out.push_str("barrier ");
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "q[{q}]");
                }
                out.push_str(";\n");
            }
            Instruction::Measure { qubit, cbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{cbit}];");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Param, ParamId};

    #[test]
    fn bell_circuit_exports() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).measure_all();
        let text = to_qasm(&qc).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn rzz_gets_a_definition() {
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.5);
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("gate rzz(theta)"));
        assert!(text.contains("rzz(0.5) q[0],q[1];"));
    }

    #[test]
    fn parametrized_angles_are_inlined() {
        let mut qc = Circuit::new(1);
        qc.rx(0, 1.25);
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("rx(1.25) q[0];"));
    }

    #[test]
    fn unbound_circuit_is_rejected() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.push(Gate::Rx(Param::free(p).scaled(1.0)), &[0]);
        let err = to_qasm(&qc).unwrap_err();
        assert_eq!(err, ExportQasmError::UnboundParameter { instruction: 0 });
        // The ParamId type is exercised for coverage.
        assert_eq!(p, ParamId(0));
    }

    #[test]
    fn barrier_lists_qubits() {
        let mut qc = Circuit::new(2);
        qc.barrier();
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("barrier q[0],q[1];"));
    }
}
