//! OpenQASM 2 import and export.
//!
//! Circuits interchange with the wider quantum toolchain through
//! OpenQASM: [`to_qasm`] serializes a bound circuit, [`from_qasm`]
//! parses the dialect this exporter (and Qiskit's exporter, for the
//! workspace's gate set) emits — one statement per line, a single
//! quantum register, angles as literals or simple `pi` expressions.

use std::fmt::Write as _;

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;
use crate::param::Param;

/// Error returned when a circuit cannot be exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportQasmError {
    /// The circuit still contains free parameters.
    UnboundParameter {
        /// Index of the offending instruction.
        instruction: usize,
    },
}

impl std::fmt::Display for ExportQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportQasmError::UnboundParameter { instruction } => {
                write!(f, "instruction {instruction} has unbound parameters")
            }
        }
    }
}

impl std::error::Error for ExportQasmError {}

/// Serializes a bound circuit to OpenQASM 2.
///
/// `rzz` and `rzx` are emitted as `gate` definitions in the header since
/// they are not part of `qelib1.inc`.
///
/// # Errors
///
/// Returns [`ExportQasmError::UnboundParameter`] if any gate parameter is
/// free.
///
/// ```
/// use hgp_circuit::{Circuit, qasm::to_qasm};
/// let mut qc = Circuit::new(2);
/// qc.h(0).cx(0, 1).measure_all();
/// let text = to_qasm(&qc)?;
/// assert!(text.contains("OPENQASM 2.0"));
/// assert!(text.contains("cx q[0],q[1];"));
/// # Ok::<(), hgp_circuit::qasm::ExportQasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, ExportQasmError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let uses_rzz = circuit
        .instructions()
        .iter()
        .any(|i| matches!(i.gate(), Some(Gate::Rzz(_))));
    let uses_rzx = circuit
        .instructions()
        .iter()
        .any(|i| matches!(i.gate(), Some(Gate::Rzx(_))));
    if uses_rzz {
        out.push_str("gate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }\n");
    }
    if uses_rzx {
        out.push_str("gate rzx(theta) a,b { h b; cx a,b; rz(theta) b; cx a,b; h b; }\n");
    }
    let n = circuit.n_qubits();
    let _ = writeln!(out, "qreg q[{n}];");
    let n_cbits = circuit
        .instructions()
        .iter()
        .filter_map(|i| match i {
            Instruction::Measure { cbit, .. } => Some(cbit + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    if n_cbits > 0 {
        let _ = writeln!(out, "creg c[{n_cbits}];");
    }
    for (idx, inst) in circuit.instructions().iter().enumerate() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                let params = gate.params();
                if !params.iter().all(|p| p.is_bound()) {
                    return Err(ExportQasmError::UnboundParameter { instruction: idx });
                }
                out.push_str(gate.name());
                if !params.is_empty() {
                    out.push('(');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", p.value().expect("checked bound"));
                    }
                    out.push(')');
                }
                out.push(' ');
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "q[{q}]");
                }
                out.push_str(";\n");
            }
            Instruction::Barrier { qubits } => {
                out.push_str("barrier ");
                for (i, q) in qubits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "q[{q}]");
                }
                out.push_str(";\n");
            }
            Instruction::Measure { qubit, cbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{cbit}];");
            }
        }
    }
    Ok(out)
}

/// Error returned when QASM text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportQasmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A gate name outside the workspace's gate set.
    UnsupportedGate {
        /// 1-based source line.
        line: usize,
        /// The offending mnemonic.
        name: String,
    },
}

impl std::fmt::Display for ImportQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportQasmError::Syntax { line, message } => {
                write!(f, "QASM syntax error on line {line}: {message}")
            }
            ImportQasmError::UnsupportedGate { line, name } => {
                write!(f, "unsupported gate `{name}` on line {line}")
            }
        }
    }
}

impl std::error::Error for ImportQasmError {}

/// Parses OpenQASM 2 text into a [`Circuit`].
///
/// Supports the statement-per-line dialect [`to_qasm`] emits: a single
/// `qreg`, an optional `creg`, `gate` definitions for `rzz`/`rzx`
/// (skipped — both are native here), gate applications over the
/// workspace gate set, `barrier`, and `measure`. Angles may be decimal
/// literals or products/quotients of literals and `pi`.
///
/// # Errors
///
/// Returns [`ImportQasmError`] on malformed statements, unknown gates,
/// arity mismatches, or out-of-range qubit indices.
///
/// ```
/// use hgp_circuit::qasm::{from_qasm, to_qasm};
/// use hgp_circuit::Circuit;
///
/// let mut qc = Circuit::new(2);
/// qc.h(0).rzz(0, 1, 0.5).measure_all();
/// let round_tripped = from_qasm(&to_qasm(&qc)?).expect("parses");
/// assert_eq!(qc.instructions(), round_tripped.instructions());
/// # Ok::<(), hgp_circuit::qasm::ExportQasmError>(())
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, ImportQasmError> {
    let syntax = |line: usize, message: &str| ImportQasmError::Syntax {
        line,
        message: message.to_string(),
    };
    let mut circuit: Option<Circuit> = None;
    let mut in_gate_def = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Skip gate-definition bodies (rzz/rzx are native gates here).
        if in_gate_def {
            if line.contains('}') {
                in_gate_def = false;
            }
            continue;
        }
        if line.starts_with("gate ") {
            in_gate_def = !line.contains('}');
            continue;
        }
        if line.starts_with("OPENQASM") || line.starts_with("include") || line.starts_with("creg") {
            continue;
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| syntax(line_no, "missing terminating `;`"))?
            .trim();
        if let Some(decl) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(syntax(line_no, "multiple qreg declarations"));
            }
            let size = decl
                .trim()
                .split(['[', ']'])
                .nth(1)
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| syntax(line_no, "malformed qreg declaration"))?;
            if size == 0 {
                return Err(syntax(line_no, "qreg must hold at least one qubit"));
            }
            circuit = Some(Circuit::new(size));
            continue;
        }
        let qc = circuit
            .as_mut()
            .ok_or_else(|| syntax(line_no, "statement before qreg declaration"))?;
        let n_qubits = qc.n_qubits();
        let parse_qubits = |list: &str| -> Result<Vec<usize>, ImportQasmError> {
            list.split(',')
                .map(|operand| {
                    let q = operand
                        .trim()
                        .split(['[', ']'])
                        .nth(1)
                        .and_then(|s| s.parse::<usize>().ok())
                        .ok_or_else(|| syntax(line_no, "malformed qubit operand"))?;
                    if q >= n_qubits {
                        return Err(syntax(line_no, "qubit index out of range"));
                    }
                    Ok(q)
                })
                .collect()
        };
        if let Some(rest) = stmt.strip_prefix("barrier") {
            let qubits = parse_qubits(rest)?;
            qc.instructions_mut().push(Instruction::Barrier { qubits });
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("measure") {
            let (lhs, rhs) = rest
                .split_once("->")
                .ok_or_else(|| syntax(line_no, "measure needs `->`"))?;
            let qubit = parse_qubits(lhs)?[0];
            let cbit = rhs
                .trim()
                .split(['[', ']'])
                .nth(1)
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| syntax(line_no, "malformed classical operand"))?;
            qc.instructions_mut()
                .push(Instruction::Measure { qubit, cbit });
            continue;
        }
        // Gate application: `name(params)? q[i](,q[j])*`.
        let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
            Some(pos) if !stmt[..pos].contains('(') || stmt[..pos].contains(')') => {
                stmt.split_at(pos)
            }
            _ => stmt
                .find(')')
                .map(|pos| stmt.split_at(pos + 1))
                .ok_or_else(|| syntax(line_no, "malformed gate statement"))?,
        };
        let (name, params) = match head.split_once('(') {
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| syntax(line_no, "unclosed parameter list"))?;
                let values = inner
                    .split(',')
                    .map(|expr| {
                        parse_angle(expr).ok_or_else(|| {
                            syntax(line_no, &format!("cannot evaluate angle `{}`", expr.trim()))
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                (name.trim(), values)
            }
            None => (head.trim(), Vec::new()),
        };
        let qubits = parse_qubits(operands)?;
        let gate =
            gate_from_mnemonic(name, &params).ok_or_else(|| ImportQasmError::UnsupportedGate {
                line: line_no,
                name: name.to_string(),
            })?;
        if gate.n_qubits() != qubits.len() {
            return Err(syntax(line_no, "operand count does not match gate arity"));
        }
        if qubits.len() == 2 && qubits[0] == qubits[1] {
            return Err(syntax(line_no, "two-qubit gate operands must differ"));
        }
        qc.push(gate, &qubits);
    }
    circuit.ok_or_else(|| syntax(text.lines().count().max(1), "no qreg declaration found"))
}

/// Builds a gate from its QASM mnemonic and evaluated parameters.
fn gate_from_mnemonic(name: &str, params: &[f64]) -> Option<Gate> {
    let one = |ctor: fn(Param) -> Gate| -> Option<Gate> {
        (params.len() == 1).then(|| ctor(Param::bound(params[0])))
    };
    match name {
        "id" if params.is_empty() => Some(Gate::I),
        "x" if params.is_empty() => Some(Gate::X),
        "y" if params.is_empty() => Some(Gate::Y),
        "z" if params.is_empty() => Some(Gate::Z),
        "h" if params.is_empty() => Some(Gate::H),
        "s" if params.is_empty() => Some(Gate::S),
        "sdg" if params.is_empty() => Some(Gate::Sdg),
        "t" if params.is_empty() => Some(Gate::T),
        "tdg" if params.is_empty() => Some(Gate::Tdg),
        "sx" if params.is_empty() => Some(Gate::SX),
        "rx" => one(Gate::Rx),
        "ry" => one(Gate::Ry),
        "rz" => one(Gate::Rz),
        "u3" => (params.len() == 3).then(|| {
            Gate::U3(
                Param::bound(params[0]),
                Param::bound(params[1]),
                Param::bound(params[2]),
            )
        }),
        "cx" if params.is_empty() => Some(Gate::CX),
        "cz" if params.is_empty() => Some(Gate::CZ),
        "swap" if params.is_empty() => Some(Gate::Swap),
        "rzz" => one(Gate::Rzz),
        "rzx" => one(Gate::Rzx),
        _ => None,
    }
}

/// Evaluates a QASM angle expression: products and quotients of decimal
/// literals and `pi`, with an optional leading minus.
fn parse_angle(expr: &str) -> Option<f64> {
    let expr = expr.trim();
    let (negated, expr) = match expr.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, expr),
    };
    let mut value = 1.0f64;
    // Split into multiplicative factors, tracking the pending operator.
    let mut divide = false;
    for piece in expr.split_inclusive(['*', '/']) {
        let (factor_text, next_op) = match piece.strip_suffix(['*', '/']) {
            Some(stripped) => (stripped.trim(), piece.ends_with('/')),
            None => (piece.trim(), false),
        };
        let factor = match factor_text {
            "pi" => std::f64::consts::PI,
            other => other.parse::<f64>().ok()?,
        };
        if divide {
            if factor == 0.0 {
                return None;
            }
            value /= factor;
        } else {
            value *= factor;
        }
        divide = next_op;
    }
    Some(if negated { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Param, ParamId};

    #[test]
    fn full_gate_set_round_trips() {
        let mut qc = Circuit::new(3);
        qc.h(0)
            .x(1)
            .y(2)
            .z(0)
            .sx(1)
            .rx(0, 1.25)
            .ry(1, -0.75)
            .rz(2, 0.125)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .rzz(0, 1, -2.5)
            .push(Gate::S, &[0])
            .push(Gate::Sdg, &[1])
            .push(Gate::T, &[2])
            .push(Gate::Tdg, &[0])
            .push(Gate::I, &[1])
            .push(
                Gate::U3(Param::bound(0.3), Param::bound(-0.4), Param::bound(0.5)),
                &[2],
            )
            .push(Gate::Rzx(Param::bound(0.9)), &[1, 2])
            .barrier()
            .measure_all();
        let text = to_qasm(&qc).expect("bound circuit exports");
        let back = from_qasm(&text).expect("exported text parses");
        assert_eq!(qc.n_qubits(), back.n_qubits());
        assert_eq!(qc.instructions(), back.instructions());
    }

    #[test]
    fn import_evaluates_pi_expressions() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrx(pi/2) q[0];\nrz(-pi) q[0];\nry(3*pi/4) q[0];\n";
        let qc = from_qasm(text).expect("parses");
        let angles: Vec<f64> = qc
            .instructions()
            .iter()
            .map(|i| i.gate().unwrap().params()[0].value().unwrap())
            .collect();
        assert!((angles[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((angles[1] + std::f64::consts::PI).abs() < 1e-15);
        assert!((angles[2] - 3.0 * std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn import_rejects_unknown_gates_and_bad_indices() {
        let unknown = "qreg q[2];\nccx q[0],q[1];\n";
        assert!(matches!(
            from_qasm(unknown),
            Err(ImportQasmError::UnsupportedGate { name, .. }) if name == "ccx"
        ));
        let out_of_range = "qreg q[2];\nx q[5];\n";
        assert!(matches!(
            from_qasm(out_of_range),
            Err(ImportQasmError::Syntax { line: 2, .. })
        ));
        let no_qreg = "x q[0];\n";
        assert!(from_qasm(no_qreg).is_err());
        // Duplicate operands must come back as an error, not a panic.
        let duplicate = "qreg q[2];\ncx q[0],q[0];\n";
        assert!(matches!(
            from_qasm(duplicate),
            Err(ImportQasmError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn import_skips_gate_definitions() {
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.5)
            .push(Gate::Rzx(Param::bound(0.25)), &[0, 1]);
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("gate rzz"));
        assert!(text.contains("gate rzx"));
        let back = from_qasm(&text).unwrap();
        assert_eq!(qc.instructions(), back.instructions());
    }

    #[test]
    fn bell_circuit_exports() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).measure_all();
        let text = to_qasm(&qc).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn rzz_gets_a_definition() {
        let mut qc = Circuit::new(2);
        qc.rzz(0, 1, 0.5);
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("gate rzz(theta)"));
        assert!(text.contains("rzz(0.5) q[0],q[1];"));
    }

    #[test]
    fn parametrized_angles_are_inlined() {
        let mut qc = Circuit::new(1);
        qc.rx(0, 1.25);
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("rx(1.25) q[0];"));
    }

    #[test]
    fn unbound_circuit_is_rejected() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.push(Gate::Rx(Param::free(p).scaled(1.0)), &[0]);
        let err = to_qasm(&qc).unwrap_err();
        assert_eq!(err, ExportQasmError::UnboundParameter { instruction: 0 });
        // The ParamId type is exercised for coverage.
        assert_eq!(p, ParamId(0));
    }

    #[test]
    fn barrier_lists_qubits() {
        let mut qc = Circuit::new(2);
        qc.barrier();
        let text = to_qasm(&qc).unwrap();
        assert!(text.contains("barrier q[0],q[1];"));
    }
}
