//! Circuit parameters: bound values and free symbols.
//!
//! Variational circuits are built once with free parameters and re-bound on
//! every optimizer iteration. A [`Param`] is either a concrete angle or a
//! reference into the circuit's parameter vector.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a free parameter within a circuit's parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A gate angle: either bound to a concrete value or free.
///
/// A free parameter can carry an affine transform `scale * p + offset`,
/// which lets several gates share one optimizer parameter (e.g. all mixer
/// rotations in a QAOA layer use the same `beta` with scale `2.0`).
///
/// ```
/// use hgp_circuit::{Param, ParamId};
/// let p = Param::free(ParamId(0)).scaled(2.0);
/// assert_eq!(p.evaluate(&[0.5]), 1.0);
/// assert_eq!(Param::bound(0.3).evaluate(&[]), 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Param {
    /// A concrete value.
    Bound(f64),
    /// `scale * params[id] + offset`.
    Free {
        /// Which optimizer parameter this angle reads.
        id: ParamId,
        /// Multiplier applied to the parameter value.
        scale: f64,
        /// Constant offset added after scaling.
        offset: f64,
    },
}

impl Param {
    /// A bound (concrete) parameter.
    #[inline]
    pub fn bound(value: f64) -> Self {
        Param::Bound(value)
    }

    /// A free parameter reading `params[id]` directly.
    #[inline]
    pub fn free(id: ParamId) -> Self {
        Param::Free {
            id,
            scale: 1.0,
            offset: 0.0,
        }
    }

    /// Returns a copy with the scale multiplied by `k`.
    #[inline]
    pub fn scaled(self, k: f64) -> Self {
        match self {
            Param::Bound(v) => Param::Bound(v * k),
            Param::Free { id, scale, offset } => Param::Free {
                id,
                scale: scale * k,
                offset: offset * k,
            },
        }
    }

    /// Returns a copy with `off` added to the offset.
    #[inline]
    pub fn shifted(self, off: f64) -> Self {
        match self {
            Param::Bound(v) => Param::Bound(v + off),
            Param::Free { id, scale, offset } => Param::Free {
                id,
                scale,
                offset: offset + off,
            },
        }
    }

    /// Evaluates the parameter against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is free and its id is out of range.
    #[inline]
    pub fn evaluate(&self, params: &[f64]) -> f64 {
        match *self {
            Param::Bound(v) => v,
            Param::Free { id, scale, offset } => scale * params[id.0] + offset,
        }
    }

    /// The concrete value, if bound.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        match *self {
            Param::Bound(v) => Some(v),
            Param::Free { .. } => None,
        }
    }

    /// Whether the parameter is bound.
    #[inline]
    pub fn is_bound(&self) -> bool {
        matches!(self, Param::Bound(_))
    }

    /// The free-parameter id, if any.
    #[inline]
    pub fn param_id(&self) -> Option<ParamId> {
        match *self {
            Param::Bound(_) => None,
            Param::Free { id, .. } => Some(id),
        }
    }

    /// Binds against `params`, producing a bound parameter.
    #[inline]
    pub fn bind(&self, params: &[f64]) -> Param {
        Param::Bound(self.evaluate(params))
    }
}

impl From<f64> for Param {
    fn from(value: f64) -> Self {
        Param::Bound(value)
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Param::Bound(v) => write!(f, "{v}"),
            Param::Free { id, scale, offset } => {
                if scale != 1.0 {
                    write!(f, "{scale}*{id}")?;
                } else {
                    write!(f, "{id}")?;
                }
                if offset != 0.0 {
                    write!(f, "{offset:+}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_evaluation_ignores_vector() {
        assert_eq!(Param::bound(1.5).evaluate(&[9.0, 9.0]), 1.5);
    }

    #[test]
    fn free_evaluation_reads_vector() {
        let p = Param::free(ParamId(1));
        assert_eq!(p.evaluate(&[0.0, 2.5]), 2.5);
    }

    #[test]
    fn affine_transform_composes() {
        let p = Param::free(ParamId(0)).scaled(2.0).shifted(1.0).scaled(3.0);
        // 3*(2*x + 1) = 6x + 3
        assert_eq!(p.evaluate(&[0.5]), 6.0 * 0.5 + 3.0);
    }

    #[test]
    fn bind_produces_bound() {
        let p = Param::free(ParamId(0)).scaled(-1.0);
        let b = p.bind(&[0.25]);
        assert_eq!(b, Param::Bound(-0.25));
        assert!(b.is_bound());
    }

    #[test]
    fn param_id_accessor() {
        assert_eq!(Param::free(ParamId(3)).param_id(), Some(ParamId(3)));
        assert_eq!(Param::bound(0.0).param_id(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Param::bound(0.5).to_string(), "0.5");
        assert_eq!(Param::free(ParamId(2)).to_string(), "p2");
        assert_eq!(Param::free(ParamId(0)).scaled(2.0).to_string(), "2*p0");
    }
}
