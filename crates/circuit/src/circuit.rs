//! The [`Circuit`] container: an ordered list of instructions over `n`
//! qubits with builder helpers, parameter binding, and direct unitary
//! construction for small circuits.

use std::fmt;

use serde::{Deserialize, Serialize};

use hgp_math::fnv::Fnv1a;
use hgp_math::Matrix;

use crate::gate::Gate;
use crate::param::{Param, ParamId};

/// One step of a circuit: a gate application, barrier, or measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// A gate applied to the listed qubits (operand order matters for
    /// directed gates such as [`Gate::CX`]).
    Gate {
        /// The gate.
        gate: Gate,
        /// Operand qubits; length must equal `gate.n_qubits()`.
        qubits: Vec<usize>,
    },
    /// A scheduling barrier across the listed qubits (all qubits if empty).
    Barrier {
        /// Qubits the barrier spans.
        qubits: Vec<usize>,
    },
    /// Measurement of one qubit into a classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        cbit: usize,
    },
}

impl Instruction {
    /// Qubits touched by this instruction.
    pub fn qubits(&self) -> &[usize] {
        match self {
            Instruction::Gate { qubits, .. } | Instruction::Barrier { qubits } => qubits,
            Instruction::Measure { qubit, .. } => std::slice::from_ref(qubit),
        }
    }

    /// The gate, if this is a gate instruction.
    pub fn gate(&self) -> Option<&Gate> {
        match self {
            Instruction::Gate { gate, .. } => Some(gate),
            _ => None,
        }
    }
}

/// A gate-level quantum circuit.
///
/// ```
/// use hgp_circuit::Circuit;
/// use std::f64::consts::PI;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1).measure_all();
/// assert_eq!(bell.n_qubits(), 2);
/// assert_eq!(bell.count_gates(), 2);
///
/// // Parametrized: one free parameter driving two rotations.
/// let mut var = Circuit::new(2);
/// let beta = var.add_param();
/// var.rx_param(0, beta, 2.0).rx_param(1, beta, 2.0);
/// let bound = var.bind(&[PI / 4.0]);
/// assert!(bound.is_bound());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    n_qubits: usize,
    n_params: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit must have at least one qubit");
        Self {
            n_qubits,
            n_params: 0,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameters declared via [`Circuit::add_param`].
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The instruction list.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable access for passes that rewrite instructions in place.
    #[inline]
    pub fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Declares a new free parameter and returns its id.
    pub fn add_param(&mut self) -> ParamId {
        let id = ParamId(self.n_params);
        self.n_params += 1;
        id
    }

    /// Declares `n` free parameters, returning their ids.
    pub fn add_params(&mut self, n: usize) -> Vec<ParamId> {
        (0..n).map(|_| self.add_param()).collect()
    }

    /// Appends a gate instruction.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches the gate arity, a qubit is
    /// out of range, or operands repeat.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert_eq!(
            qubits.len(),
            gate.n_qubits(),
            "gate {gate} expects {} operand(s)",
            gate.n_qubits()
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate operands must differ");
        }
        self.instructions.push(Instruction::Gate {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Appends a barrier over all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        self.instructions.push(Instruction::Barrier {
            qubits: (0..self.n_qubits).collect(),
        });
        self
    }

    /// Appends measurement of every qubit into the same-numbered bit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.n_qubits {
            self.instructions
                .push(Instruction::Measure { qubit: q, cbit: q });
        }
        self
    }

    // --- builder helpers -------------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q])
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q])
    }

    /// Square-root-of-X on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::SX, &[q])
    }

    /// `RX(theta)` on `q` with a bound angle.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(Param::bound(theta)), &[q])
    }

    /// `RY(theta)` on `q` with a bound angle.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(Param::bound(theta)), &[q])
    }

    /// `RZ(theta)` on `q` with a bound angle.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(Param::bound(theta)), &[q])
    }

    /// `RX(scale * p)` on `q` driven by free parameter `p`.
    pub fn rx_param(&mut self, q: usize, p: ParamId, scale: f64) -> &mut Self {
        self.push(Gate::Rx(Param::free(p).scaled(scale)), &[q])
    }

    /// `RZ(scale * p)` on `q` driven by free parameter `p`.
    pub fn rz_param(&mut self, q: usize, p: ParamId, scale: f64) -> &mut Self {
        self.push(Gate::Rz(Param::free(p).scaled(scale)), &[q])
    }

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::CX, &[control, target])
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::CZ, &[a, b])
    }

    /// SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }

    /// `RZZ(theta)` between `a` and `b` with a bound angle.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rzz(Param::bound(theta)), &[a, b])
    }

    /// `RZZ(scale * p)` between `a` and `b` driven by free parameter `p`.
    pub fn rzz_param(&mut self, a: usize, b: usize, p: ParamId, scale: f64) -> &mut Self {
        self.push(Gate::Rzz(Param::free(p).scaled(scale)), &[a, b])
    }

    // --- queries ----------------------------------------------------------

    /// Number of gate instructions (barriers and measurements excluded).
    pub fn count_gates(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Gate { .. }))
            .count()
    }

    /// Number of two-qubit gate instructions.
    pub fn count_2q_gates(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Gate { gate, .. } if gate.n_qubits() == 2))
            .count()
    }

    /// Circuit depth counting only gate instructions (barriers ignored).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for inst in &self.instructions {
            if let Instruction::Gate { qubits, .. } = inst {
                let l = qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
                for &q in qubits {
                    level[q] = l;
                }
                depth = depth.max(l);
            }
        }
        depth
    }

    /// Whether every gate parameter is bound.
    pub fn is_bound(&self) -> bool {
        self.instructions
            .iter()
            .filter_map(Instruction::gate)
            .all(Gate::is_bound)
    }

    /// Binds all free parameters against `params`, producing a concrete
    /// circuit with `n_params == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.n_params()`.
    pub fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            self.n_params,
            "expected {} parameter(s)",
            self.n_params
        );
        let instructions = self
            .instructions
            .iter()
            .map(|inst| match inst {
                Instruction::Gate { gate, qubits } => Instruction::Gate {
                    gate: gate.bind(params),
                    qubits: qubits.clone(),
                },
                other => other.clone(),
            })
            .collect();
        Circuit {
            n_qubits: self.n_qubits,
            n_params: 0,
            instructions,
        }
    }

    /// Computes the full circuit unitary (dimension `2^n`), ignoring
    /// barriers and measurements.
    ///
    /// Intended for circuits of at most ~10 qubits (tests, transpiler
    /// validation); simulation of larger circuits should go through
    /// `hgp-sim`, which applies gates without materializing the unitary.
    ///
    /// Returns `None` if any parameter is unbound.
    pub fn unitary(&self) -> Option<Matrix> {
        let dim = 1usize << self.n_qubits;
        let mut u = Matrix::identity(dim);
        for inst in &self.instructions {
            if let Instruction::Gate { gate, qubits } = inst {
                let g = gate.matrix()?;
                let full = g.embed(self.n_qubits, qubits);
                u = full.matmul(&u);
            }
        }
        Some(u)
    }

    /// Appends all instructions of `other` (must have the same width).
    ///
    /// Free parameters of `other` are *not* remapped; compose circuits that
    /// share a parameter table, or bind first.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "appended circuit must have the same width"
        );
        self.n_params = self.n_params.max(other.n_params);
        self.instructions.extend(other.instructions.iter().cloned());
        self
    }

    /// The inverse circuit: gates reversed and individually inverted.
    ///
    /// Returns `None` if any gate lacks an inverse in the gate set
    /// (`SX`, `U3`) or the circuit contains measurements. Barriers are
    /// preserved in reversed positions. Useful for uncomputation,
    /// Loschmidt-echo tests, and noise amplification by folding.
    pub fn inverse(&self) -> Option<Circuit> {
        let mut out = Circuit::new(self.n_qubits);
        out.n_params = self.n_params;
        for inst in self.instructions.iter().rev() {
            match inst {
                Instruction::Gate { gate, qubits } => {
                    out.push(gate.inverse()?, qubits);
                }
                Instruction::Barrier { qubits } => {
                    out.instructions.push(Instruction::Barrier {
                        qubits: qubits.clone(),
                    });
                }
                Instruction::Measure { .. } => return None,
            }
        }
        Some(out)
    }

    /// A canonical 64-bit structural hash of the circuit.
    ///
    /// Two circuits share a key exactly when they are structurally
    /// identical: same width, same declared parameter count, and the
    /// same instruction stream (gate kinds, operand order, bound angle
    /// bits, and free-parameter `id`/`scale`/`offset` structure). The
    /// key is computed over a canonical byte encoding with FNV-1a, so it
    /// is stable across processes and runs — suitable as a
    /// compiled-program cache key.
    ///
    /// Note the asymmetry that makes this useful for serving: a
    /// *parametrized* circuit keeps one key no matter what values are
    /// later passed to [`Circuit::bind`], while two fully bound circuits
    /// differing in any angle hash differently (their transpiled forms
    /// may legitimately differ, e.g. through rotation merging). Callers
    /// that want to share compiled programs across parameter points
    /// should therefore submit the parametrized circuit plus a binding,
    /// not pre-bound circuits.
    pub fn structural_key(&self) -> u64 {
        fn param(h: &mut Fnv1a, p: &Param) {
            match *p {
                Param::Bound(v) => {
                    h.byte(0);
                    h.f64(v);
                }
                Param::Free { id, scale, offset } => {
                    h.byte(1);
                    h.usize(id.0);
                    h.f64(scale);
                    h.f64(offset);
                }
            }
        }
        let mut h = Fnv1a::new();
        h.usize(self.n_qubits);
        h.usize(self.n_params);
        h.usize(self.instructions.len());
        for inst in &self.instructions {
            match inst {
                Instruction::Gate { gate, qubits } => {
                    h.byte(0);
                    h.str(gate.name());
                    for p in gate.params() {
                        param(&mut h, &p);
                    }
                    h.usize(qubits.len());
                    for &q in qubits {
                        h.usize(q);
                    }
                }
                Instruction::Barrier { qubits } => {
                    h.byte(1);
                    h.usize(qubits.len());
                    for &q in qubits {
                        h.usize(q);
                    }
                }
                Instruction::Measure { qubit, cbit } => {
                    h.byte(2);
                    h.usize(*qubit);
                    h.usize(*cbit);
                }
            }
        }
        h.finish()
    }

    /// Returns a copy with every qubit index `q` replaced by `layout[q]`.
    ///
    /// Used by the transpiler to apply an initial layout onto a wider
    /// device register.
    ///
    /// # Panics
    ///
    /// Panics if `layout.len() < self.n_qubits()`, a mapped index exceeds
    /// `new_width`, or mapped indices collide.
    pub fn remapped(&self, layout: &[usize], new_width: usize) -> Circuit {
        assert!(layout.len() >= self.n_qubits, "layout too short");
        let used = &layout[..self.n_qubits];
        let mut seen = vec![false; new_width];
        for &p in used {
            assert!(p < new_width, "layout target {p} out of range");
            assert!(!seen[p], "layout target {p} repeated");
            seen[p] = true;
        }
        let map = |q: usize| layout[q];
        let instructions = self
            .instructions
            .iter()
            .map(|inst| match inst {
                Instruction::Gate { gate, qubits } => Instruction::Gate {
                    gate: *gate,
                    qubits: qubits.iter().map(|&q| map(q)).collect(),
                },
                Instruction::Barrier { qubits } => Instruction::Barrier {
                    qubits: qubits.iter().map(|&q| map(q)).collect(),
                },
                Instruction::Measure { qubit, cbit } => Instruction::Measure {
                    qubit: map(*qubit),
                    cbit: *cbit,
                },
            })
            .collect();
        Circuit {
            n_qubits: new_width,
            n_params: self.n_params,
            instructions,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} params)",
            self.n_qubits, self.n_params
        )?;
        for inst in &self.instructions {
            match inst {
                Instruction::Gate { gate, qubits } => {
                    writeln!(f, "  {gate} {qubits:?}")?;
                }
                Instruction::Barrier { .. } => writeln!(f, "  barrier")?,
                Instruction::Measure { qubit, cbit } => {
                    writeln!(f, "  measure q{qubit} -> c{cbit}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_math::c64;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn bell_state_unitary() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let u = qc.unitary().unwrap();
        // Column 0 is the Bell state (|00> + |11>)/sqrt(2).
        assert!((u[(0, 0)] - c64(FRAC_1_SQRT_2, 0.0)).norm() < 1e-12);
        assert!((u[(3, 0)] - c64(FRAC_1_SQRT_2, 0.0)).norm() < 1e-12);
        assert!(u[(1, 0)].norm() < 1e-12);
        assert!(u[(2, 0)].norm() < 1e-12);
    }

    #[test]
    fn cx_direction_matters() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert!(!a.unitary().unwrap().approx_eq(&b.unitary().unwrap(), 1e-9));
    }

    #[test]
    fn cx_01_flips_target_1() {
        // control = qubit 0 (LSB). |01> (q0=1) -> |11>.
        let mut qc = Circuit::new(2);
        qc.cx(0, 1);
        let u = qc.unitary().unwrap();
        assert_eq!(u[(0b11, 0b01)], c64(1.0, 0.0));
        assert_eq!(u[(0b10, 0b10)], c64(1.0, 0.0));
        assert_eq!(u[(0b00, 0b00)], c64(1.0, 0.0));
    }

    #[test]
    fn depth_computation() {
        let mut qc = Circuit::new(3);
        qc.h(0).h(1).h(2); // depth 1
        qc.cx(0, 1); // depth 2
        qc.cx(1, 2); // depth 3
        qc.x(0); // still depth 3 overall (parallel with cx(1,2)? no: x(0) at level 3)
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn parameter_binding_round_trip() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.rx_param(0, p, 2.0);
        assert!(!qc.is_bound());
        let bound = qc.bind(&[PI / 2.0]);
        assert!(bound.is_bound());
        let expect = {
            let mut c = Circuit::new(1);
            c.rx(0, PI);
            c.unitary().unwrap()
        };
        assert!(bound.unitary().unwrap().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn shared_parameter_drives_multiple_gates() {
        let mut qc = Circuit::new(2);
        let b = qc.add_param();
        qc.rx_param(0, b, 2.0).rx_param(1, b, 2.0);
        let bound = qc.bind(&[0.3]);
        let expect = {
            let mut c = Circuit::new(2);
            c.rx(0, 0.6).rx(1, 0.6);
            c.unitary().unwrap()
        };
        assert!(bound.unitary().unwrap().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn unitary_of_unbound_circuit_is_none() {
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.rx_param(0, p, 1.0);
        assert!(qc.unitary().is_none());
    }

    #[test]
    fn remapping_preserves_semantics_under_extension() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let wide = qc.remapped(&[2, 0], 3);
        assert_eq!(wide.n_qubits(), 3);
        // Gate operands moved: h on 2, cx on (2, 0).
        match &wide.instructions()[1] {
            Instruction::Gate { qubits, .. } => assert_eq!(qubits, &vec![2, 0]),
            _ => panic!("expected gate"),
        }
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.count_gates(), 2);
    }

    #[test]
    fn gate_counts() {
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.5).barrier().measure_all();
        assert_eq!(qc.count_gates(), 3);
        assert_eq!(qc.count_2q_gates(), 2);
    }

    #[test]
    fn inverse_uncomputes() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, -0.4).rz(0, 1.1);
        let inv = qc.inverse().expect("all gates invertible");
        let mut echo = qc.clone();
        echo.append(&inv);
        let u = echo.unitary().unwrap();
        assert!(u.approx_eq(&hgp_math::Matrix::identity(4), 1e-10));
    }

    #[test]
    fn inverse_rejects_measurements_and_sx() {
        let mut qc = Circuit::new(1);
        qc.h(0).measure_all();
        assert!(qc.inverse().is_none());
        let mut qc2 = Circuit::new(1);
        qc2.sx(0);
        assert!(qc2.inverse().is_none());
    }

    #[test]
    fn structural_key_is_stable_and_discriminating() {
        let build = |theta: f64| {
            let mut qc = Circuit::new(3);
            let p = qc.add_param();
            qc.h(0).cx(0, 1).rzz_param(1, 2, p, 2.0).rx(2, theta);
            qc.barrier().measure_all();
            qc
        };
        // Identical construction => identical key (stable across values).
        assert_eq!(build(0.4).structural_key(), build(0.4).structural_key());
        // A different bound angle is a different shape.
        assert_ne!(build(0.4).structural_key(), build(0.5).structural_key());
        // Different operand order is a different shape.
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_ne!(a.structural_key(), b.structural_key());
        // Width matters even with identical instructions.
        let mut narrow = Circuit::new(2);
        narrow.h(0);
        let mut wide = Circuit::new(3);
        wide.h(0);
        assert_ne!(narrow.structural_key(), wide.structural_key());
    }

    #[test]
    fn structural_key_invariant_under_binding_values() {
        // The whole point of the key: one parametrized circuit keeps one
        // key; its bindings differ from it and from each other.
        let mut qc = Circuit::new(2);
        let p = qc.add_param();
        qc.rx_param(0, p, 1.0).rzz_param(0, 1, p, 2.0);
        let key = qc.structural_key();
        assert_eq!(key, qc.clone().structural_key());
        let b1 = qc.bind(&[0.3]);
        let b2 = qc.bind(&[0.7]);
        assert_ne!(key, b1.structural_key());
        assert_ne!(b1.structural_key(), b2.structural_key());
    }

    #[test]
    fn structural_key_separates_free_param_structure() {
        let mut a = Circuit::new(1);
        let p = a.add_param();
        a.rx_param(0, p, 1.0);
        let mut b = Circuit::new(1);
        let q = b.add_param();
        b.rx_param(0, q, 2.0);
        assert_ne!(a.structural_key(), b.structural_key());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut qc = Circuit::new(2);
        qc.h(2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn repeated_operand_panics() {
        let mut qc = Circuit::new(2);
        qc.cx(1, 1);
    }
}
