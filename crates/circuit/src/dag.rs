//! A wire-structured view of a circuit for optimization passes.
//!
//! [`CircuitDag`] indexes, for every instruction, its predecessor and
//! successor on each qubit wire. Passes such as commutative gate
//! cancellation walk these wires instead of rescanning the instruction
//! list.

use crate::circuit::Circuit;

/// Node identifier within a [`CircuitDag`] (index into the original
/// instruction list).
pub type NodeId = usize;

/// Per-instruction wire links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagNode {
    /// Index of the instruction in the source circuit.
    pub id: NodeId,
    /// Operand qubits, in instruction order.
    pub qubits: Vec<usize>,
    /// For each operand qubit, the previous instruction on that wire.
    pub prev_on_wire: Vec<Option<NodeId>>,
    /// For each operand qubit, the next instruction on that wire.
    pub next_on_wire: Vec<Option<NodeId>>,
}

/// Directed-acyclic-graph view of a circuit.
///
/// ```
/// use hgp_circuit::{Circuit, dag::CircuitDag};
/// let mut qc = Circuit::new(2);
/// qc.h(0).cx(0, 1).h(1);
/// let dag = CircuitDag::new(&qc);
/// // The cx (instruction 1) is the successor of h(0) on qubit 0.
/// assert_eq!(dag.next_on_qubit(0, 0), Some(1));
/// assert_eq!(dag.prev_on_qubit(2, 1), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    wire_front: Vec<Option<NodeId>>,
    wire_back: Vec<Option<NodeId>>,
}

impl CircuitDag {
    /// Builds the DAG view of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.n_qubits();
        let mut last_on_wire: Vec<Option<NodeId>> = vec![None; n];
        let mut wire_front: Vec<Option<NodeId>> = vec![None; n];
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.instructions().len());
        for (id, inst) in circuit.instructions().iter().enumerate() {
            let qubits: Vec<usize> = inst.qubits().to_vec();
            let mut prev = Vec::with_capacity(qubits.len());
            for &q in &qubits {
                prev.push(last_on_wire[q]);
                if wire_front[q].is_none() {
                    wire_front[q] = Some(id);
                }
            }
            for (slot, &q) in qubits.iter().enumerate() {
                if let Some(p) = prev[slot] {
                    let pos = nodes[p]
                        .qubits
                        .iter()
                        .position(|&pq| pq == q)
                        .expect("wire bookkeeping consistent");
                    nodes[p].next_on_wire[pos] = Some(id);
                }
                last_on_wire[q] = Some(id);
            }
            let width = qubits.len();
            nodes.push(DagNode {
                id,
                qubits,
                prev_on_wire: prev,
                next_on_wire: vec![None; width],
            });
        }
        CircuitDag {
            nodes,
            wire_front,
            wire_back: last_on_wire,
        }
    }

    /// All nodes in original instruction order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// First instruction on qubit `q`'s wire.
    pub fn front(&self, q: usize) -> Option<NodeId> {
        self.wire_front[q]
    }

    /// Last instruction on qubit `q`'s wire.
    pub fn back(&self, q: usize) -> Option<NodeId> {
        self.wire_back[q]
    }

    /// Successor of instruction `id` along qubit `q`'s wire.
    ///
    /// Returns `None` if `id` does not act on `q` or is last on the wire.
    pub fn next_on_qubit(&self, id: NodeId, q: usize) -> Option<NodeId> {
        let node = &self.nodes[id];
        let slot = node.qubits.iter().position(|&iq| iq == q)?;
        node.next_on_wire[slot]
    }

    /// Predecessor of instruction `id` along qubit `q`'s wire.
    ///
    /// Returns `None` if `id` does not act on `q` or is first on the wire.
    pub fn prev_on_qubit(&self, id: NodeId, q: usize) -> Option<NodeId> {
        let node = &self.nodes[id];
        let slot = node.qubits.iter().position(|&iq| iq == q)?;
        node.prev_on_wire[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_are_linked_in_order() {
        let mut qc = Circuit::new(2);
        qc.h(0) // 0
            .cx(0, 1) // 1
            .h(1) // 2
            .cx(1, 0); // 3
        let dag = CircuitDag::new(&qc);
        assert_eq!(dag.front(0), Some(0));
        assert_eq!(dag.front(1), Some(1));
        assert_eq!(dag.back(0), Some(3));
        assert_eq!(dag.back(1), Some(3));
        assert_eq!(dag.next_on_qubit(0, 0), Some(1));
        assert_eq!(dag.next_on_qubit(1, 0), Some(3));
        assert_eq!(dag.next_on_qubit(1, 1), Some(2));
        assert_eq!(dag.prev_on_qubit(3, 1), Some(2));
        assert_eq!(dag.prev_on_qubit(3, 0), Some(1));
        assert_eq!(dag.prev_on_qubit(0, 0), None);
        assert_eq!(dag.next_on_qubit(3, 0), None);
    }

    #[test]
    fn queries_on_foreign_qubit_return_none() {
        let mut qc = Circuit::new(2);
        qc.h(0).h(1);
        let dag = CircuitDag::new(&qc);
        assert_eq!(dag.next_on_qubit(0, 1), None);
        assert_eq!(dag.prev_on_qubit(1, 0), None);
    }

    #[test]
    fn barriers_participate_in_wires() {
        let mut qc = Circuit::new(1);
        qc.h(0).barrier().h(0);
        let dag = CircuitDag::new(&qc);
        assert_eq!(dag.next_on_qubit(0, 0), Some(1));
        assert_eq!(dag.next_on_qubit(1, 0), Some(2));
    }

    #[test]
    fn empty_circuit_has_empty_wires() {
        let qc = Circuit::new(3);
        let dag = CircuitDag::new(&qc);
        for q in 0..3 {
            assert_eq!(dag.front(q), None);
            assert_eq!(dag.back(q), None);
        }
        assert!(dag.nodes().is_empty());
    }
}
