//! Specialized statevector kernels.
//!
//! The generic [`crate::StateVector::apply_operator`] path gathers a
//! `2^k` block per basis group and multiplies it by the gate matrix —
//! correct for any operator, but wasteful for the structured gates VQA
//! circuits are made of. This module supplies the fast paths the QAOA
//! hot loop lives in:
//!
//! - **diagonal kernels** for `RZ`/`Z`/`S`/`T`/`CZ`/`RZZ` (QAOA's entire
//!   cost layer is diagonal): one complex multiply per amplitude, no
//!   gathering, no branch,
//! - **strided dense kernels** for general 1q/2q operators: amplitude
//!   pairs/quads are enumerated directly by bit surgery instead of
//!   scanning all `2^n` indices and skipping the upper halves,
//! - **parallel chunking**: above [`PAR_QUBIT_THRESHOLD`] qubits each
//!   kernel splits the amplitude vector into cache-sized aligned blocks
//!   and fans them out over rayon workers.
//!
//! All kernels are exact (no approximation); property tests in
//! `tests/property_tests.rs` pin them against the generic embed path to
//! `1e-12`.

use hgp_circuit::Gate;
use hgp_math::{Complex64, Matrix};
use rayon::prelude::*;

/// Register width (qubits) at which kernels start fanning out to rayon
/// workers. Below this the per-thread dispatch overhead outweighs the
/// arithmetic.
pub const PAR_QUBIT_THRESHOLD: usize = 20;

/// Amplitudes per parallel work chunk (`2^16` complex values = 1 MiB),
/// sized to keep each worker in L2 while amortizing dispatch overhead.
const PAR_CHUNK: usize = 1 << 16;

/// Whether a vector of `dim` amplitudes is worth parallelizing.
#[inline]
fn fan_out(dim: usize) -> bool {
    dim >= (1 << PAR_QUBIT_THRESHOLD) && rayon::current_num_threads() > 1
}

/// The diagonal of a 1-qubit gate, if the gate is diagonal.
pub fn diagonal_1q(gate: &Gate) -> Option<[Complex64; 2]> {
    let one = Complex64::ONE;
    Some(match gate {
        Gate::I => [one, one],
        Gate::Z => [one, Complex64::new(-1.0, 0.0)],
        Gate::S => [one, Complex64::I],
        Gate::Sdg => [one, Complex64::new(0.0, -1.0)],
        Gate::T => [one, Complex64::cis(std::f64::consts::FRAC_PI_4)],
        Gate::Tdg => [one, Complex64::cis(-std::f64::consts::FRAC_PI_4)],
        Gate::Rz(p) => {
            let half = p.value()? / 2.0;
            [Complex64::cis(-half), Complex64::cis(half)]
        }
        _ => return None,
    })
}

/// The diagonal of a 2-qubit gate in `|t_hi t_lo>` order, if diagonal.
pub fn diagonal_2q(gate: &Gate) -> Option<[Complex64; 4]> {
    let one = Complex64::ONE;
    Some(match gate {
        Gate::CZ => [one, one, one, Complex64::new(-1.0, 0.0)],
        Gate::Rzz(p) => {
            let half = p.value()? / 2.0;
            let (m, pl) = (Complex64::cis(-half), Complex64::cis(half));
            [m, pl, pl, m]
        }
        _ => return None,
    })
}

/// Applies a 1-qubit diagonal `diag(d0, d1)` on `target`.
pub fn apply_diag_1q(amps: &mut [Complex64], target: usize, d: [Complex64; 2]) {
    let scan = |base: usize, chunk: &mut [Complex64]| {
        for (off, a) in chunk.iter_mut().enumerate() {
            *a *= d[((base + off) >> target) & 1];
        }
    };
    if fan_out(amps.len()) {
        amps.par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| scan(c * PAR_CHUNK, chunk));
    } else {
        scan(0, amps);
    }
}

/// Applies a 2-qubit diagonal `diag(d00, d01, d10, d11)` on
/// `(t_hi, t_lo)` (first operand = most-significant bit).
pub fn apply_diag_2q(amps: &mut [Complex64], t_hi: usize, t_lo: usize, d: [Complex64; 4]) {
    let scan = |base: usize, chunk: &mut [Complex64]| {
        for (off, a) in chunk.iter_mut().enumerate() {
            let i = base + off;
            *a *= d[(((i >> t_hi) & 1) << 1) | ((i >> t_lo) & 1)];
        }
    };
    if fan_out(amps.len()) {
        amps.par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| scan(c * PAR_CHUNK, chunk));
    } else {
        scan(0, amps);
    }
}

/// One diagonal gate prepared for a fused sweep.
#[derive(Debug, Clone, Copy)]
pub enum DiagOp {
    /// A 1-qubit diagonal on `target`.
    One {
        /// Target qubit.
        target: usize,
        /// Diagonal entries.
        d: [Complex64; 2],
    },
    /// A 2-qubit diagonal on `(t_hi, t_lo)`.
    Two {
        /// Most-significant operator bit.
        t_hi: usize,
        /// Least-significant operator bit.
        t_lo: usize,
        /// Diagonal entries in `|t_hi t_lo>` order.
        d: [Complex64; 4],
    },
}

impl DiagOp {
    /// Builds the op for a diagonal gate, if the gate is diagonal with
    /// bound parameters.
    pub fn from_gate(gate: &Gate, qubits: &[usize]) -> Option<DiagOp> {
        match qubits.len() {
            1 => diagonal_1q(gate).map(|d| DiagOp::One {
                target: qubits[0],
                d,
            }),
            2 => diagonal_2q(gate).map(|d| DiagOp::Two {
                t_hi: qubits[0],
                t_lo: qubits[1],
                d,
            }),
            _ => None,
        }
    }

    /// The diagonal factor this op contributes at basis state `i`.
    #[inline]
    pub fn factor(&self, i: usize) -> Complex64 {
        match *self {
            DiagOp::One { target, d } => d[(i >> target) & 1],
            DiagOp::Two { t_hi, t_lo, d } => d[(((i >> t_hi) & 1) << 1) | ((i >> t_lo) & 1)],
        }
    }
}

/// Amplitudes per cache block of the fused diagonal sweep (`2^12`
/// complex values = 64 KiB — L1-resident).
const FUSE_BLOCK: usize = 1 << 12;

/// Applies a *run* of diagonal gates in one blocked sweep over the
/// amplitudes.
///
/// A QAOA cost layer is `n` consecutive `RZZ` gates — all diagonal, all
/// commuting. Applying them one at a time costs `n` full passes over
/// the `2^n_q` amplitudes; fused, the amplitudes stream through cache
/// once in L1-sized blocks, with each op's tight loop running over the
/// resident block. Ops whose target bits lie entirely above the block
/// are constant within it and collapse to a single broadcast factor.
pub fn apply_diag_fused(amps: &mut [Complex64], ops: &[DiagOp]) {
    if ops.is_empty() {
        return;
    }
    let block_bits = FUSE_BLOCK.trailing_zeros() as usize;
    let scan = |base: usize, chunk: &mut [Complex64]| {
        for (bi, blk) in chunk.chunks_mut(FUSE_BLOCK).enumerate() {
            let b0 = base + bi * FUSE_BLOCK;
            // Factors from ops acting entirely above this block are
            // constant across it; accumulate them into one broadcast.
            let mut broadcast = Complex64::ONE;
            let mut varying = false;
            for op in ops {
                match *op {
                    DiagOp::One { target, d } => {
                        if target >= block_bits {
                            broadcast *= d[(b0 >> target) & 1];
                        } else {
                            varying = true;
                        }
                    }
                    DiagOp::Two { t_hi, t_lo, d } => {
                        if t_hi >= block_bits && t_lo >= block_bits {
                            broadcast *= d[(((b0 >> t_hi) & 1) << 1) | ((b0 >> t_lo) & 1)];
                        } else {
                            varying = true;
                        }
                    }
                }
            }
            if broadcast != Complex64::ONE {
                for a in blk.iter_mut() {
                    *a *= broadcast;
                }
            }
            if !varying {
                continue;
            }
            for op in ops {
                match *op {
                    DiagOp::One { target, d } if target < block_bits => {
                        for (off, a) in blk.iter_mut().enumerate() {
                            *a *= d[(off >> target) & 1];
                        }
                    }
                    DiagOp::Two { t_hi, t_lo, d } if t_hi < block_bits || t_lo < block_bits => {
                        for (off, a) in blk.iter_mut().enumerate() {
                            let i = b0 + off;
                            *a *= d[(((i >> t_hi) & 1) << 1) | ((i >> t_lo) & 1)];
                        }
                    }
                    _ => {}
                }
            }
        }
    };
    if fan_out(amps.len()) {
        amps.par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| scan(c * PAR_CHUNK, chunk));
    } else {
        scan(0, amps);
    }
}

/// Applies a *run* of diagonal gates in one blocked sweep, **bit-exact**
/// to applying them one at a time.
///
/// [`apply_diag_fused`] collapses ops acting above the cache block into
/// a single broadcast factor — one multiply where the sequential path
/// does several, so its round-off differs from gate-at-a-time
/// application (within `1e-12`, which its property tests pin). The
/// replay engine cannot afford even that: its contract is that a
/// compiled tape reproduces [`crate::TrajectoryEngine`]'s per-gate
/// dispatch *bit for bit*. This kernel therefore keeps one multiply per
/// op per amplitude — each amplitude sees exactly the factor sequence
/// the sequential [`apply_diag_1q`]/[`apply_diag_2q`] calls would apply
/// — and wins by streaming the amplitudes through cache once per run
/// (L1-sized blocks with every op's tight loop over the resident block)
/// instead of once per gate.
pub fn apply_diag_run_exact(amps: &mut [Complex64], ops: &[DiagOp]) {
    if ops.is_empty() {
        return;
    }
    let scan = |base: usize, chunk: &mut [Complex64]| {
        let mut start = 0;
        while start < chunk.len() {
            let end = (start + FUSE_BLOCK).min(chunk.len());
            let blk = &mut chunk[start..end];
            let b0 = base + start;
            for op in ops {
                match *op {
                    DiagOp::One { target, d } => {
                        for (off, a) in blk.iter_mut().enumerate() {
                            *a *= d[((b0 + off) >> target) & 1];
                        }
                    }
                    DiagOp::Two { t_hi, t_lo, d } => {
                        for (off, a) in blk.iter_mut().enumerate() {
                            let i = b0 + off;
                            *a *= d[(((i >> t_hi) & 1) << 1) | ((i >> t_lo) & 1)];
                        }
                    }
                }
            }
            start = end;
        }
    };
    if fan_out(amps.len()) {
        amps.par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(c, chunk)| scan(c * PAR_CHUNK, chunk));
    } else {
        scan(0, amps);
    }
}

/// Applies a dense 2x2 operator on `target` with stride-based pair
/// enumeration (no per-index branch).
pub fn apply_dense_1q(amps: &mut [Complex64], target: usize, op: &Matrix) {
    debug_assert_eq!(op.rows(), 2);
    let (m00, m01, m10, m11) = (op[(0, 0)], op[(0, 1)], op[(1, 0)], op[(1, 1)]);
    let bit = 1usize << target;
    let low = bit - 1;
    // Pair `g` of a chunk lives at `i` (bit clear) and `i | bit`: insert
    // a zero at the target position of `g` by bit surgery. Chunks are
    // aligned to 2^(t+1), so the enumeration is chunk-local.
    let kernel = |chunk: &mut [Complex64]| {
        for g in 0..chunk.len() / 2 {
            let i = ((g & !low) << 1) | (g & low);
            let j = i | bit;
            let (a, b) = (chunk[i], chunk[j]);
            chunk[i] = m00 * a + m01 * b;
            chunk[j] = m10 * a + m11 * b;
        }
    };
    let chunk_len = PAR_CHUNK.max(2 * bit);
    if fan_out(amps.len()) && amps.len() > chunk_len {
        amps.par_chunks_mut(chunk_len).for_each(kernel);
    } else {
        kernel(amps);
    }
}

/// Applies a dense 4x4 operator on `(t_hi, t_lo)` with stride-based quad
/// enumeration (first operand = most-significant bit).
pub fn apply_dense_2q(amps: &mut [Complex64], t_hi: usize, t_lo: usize, op: &Matrix) {
    debug_assert_eq!(op.rows(), 4);
    debug_assert_ne!(t_hi, t_lo);
    let bh = 1usize << t_hi;
    let bl = 1usize << t_lo;
    let top = bh.max(bl);
    let block = 2 * top;
    // Enumerate the quads inside one aligned block of size 2 * max-bit:
    // indices with both target bits clear, counted by bit surgery over
    // the two fixed bits.
    let (b_lo, b_hi) = (bh.min(bl), top);
    let kernel = |chunk: &mut [Complex64]| {
        for blk in chunk.chunks_exact_mut(block) {
            // g runs over block indices with both target bits clear.
            let quarter = block / 4;
            for g in 0..quarter {
                // Insert a 0 at the low target bit, then at the high one.
                let low = g & (b_lo - 1);
                let mid = (g ^ low) << 1;
                let i0 = {
                    let partial = mid | low;
                    let lowpart = partial & (b_hi - 1);
                    ((partial ^ lowpart) << 1) | lowpart
                };
                let i1 = i0 | bl;
                let i2 = i0 | bh;
                let i3 = i0 | bh | bl;
                let v = [blk[i0], blk[i1], blk[i2], blk[i3]];
                let mut out = [Complex64::ZERO; 4];
                for (r, o) in out.iter_mut().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &vc) in v.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = op[(r, c)].mul_add(vc, acc);
                    }
                    *o = acc;
                }
                blk[i0] = out[0];
                blk[i1] = out[1];
                blk[i2] = out[2];
                blk[i3] = out[3];
            }
        }
    };
    let chunk_len = PAR_CHUNK.max(block);
    if fan_out(amps.len()) && amps.len() > chunk_len {
        amps.par_chunks_mut(chunk_len).for_each(kernel);
    } else {
        kernel(amps);
    }
}

/// Scales every amplitude by `d(index)` where the diagonal factor is a
/// per-basis-state table lookup on `targets`' bits. Used by the
/// density-matrix diagonal fast path.
#[inline]
pub fn diag_factor(index: usize, targets: &[usize], d: &[Complex64]) -> Complex64 {
    let mut sel = 0usize;
    for &t in targets {
        sel = (sel << 1) | ((index >> t) & 1);
    }
    d[sel]
}

/// The pre-kernel-layer operator application: a full `2^n` index scan
/// with a per-index branch selecting the lower half of each pair/quad.
///
/// Kept as the reference implementation the fused/strided/parallel
/// kernels are pinned against (property tests demand agreement to
/// `1e-12`) and benchmarked against (`crates/bench/benches/kernels.rs`).
pub mod reference {
    use super::{Complex64, Matrix};

    /// Branch-per-index dense 1q application (the seed's `apply_1q`).
    pub fn apply_1q(amps: &mut [Complex64], target: usize, op: &Matrix) {
        assert_eq!(op.rows(), 2, "expected a 2x2 operator");
        let bit = 1usize << target;
        let (a, b, c, d) = (op[(0, 0)], op[(0, 1)], op[(1, 0)], op[(1, 1)]);
        let dim = amps.len();
        let mut i = 0usize;
        while i < dim {
            if i & bit == 0 {
                let j = i | bit;
                let (x, y) = (amps[i], amps[j]);
                amps[i] = a * x + b * y;
                amps[j] = c * x + d * y;
            }
            i += 1;
        }
    }

    /// Branch-per-index dense 2q application (the seed's `apply_2q`).
    pub fn apply_2q(amps: &mut [Complex64], t_hi: usize, t_lo: usize, op: &Matrix) {
        assert_eq!(op.rows(), 4, "expected a 4x4 operator");
        assert_ne!(t_hi, t_lo, "targets must differ");
        let bh = 1usize << t_hi;
        let bl = 1usize << t_lo;
        let dim = amps.len();
        for i in 0..dim {
            if i & bh == 0 && i & bl == 0 {
                // Basis order |t_hi t_lo> = 00, 01, 10, 11.
                let idx = [i, i | bl, i | bh, i | bh | bl];
                let vin = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                for (r, &out_i) in idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (ccol, &v) in vin.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = op[(r, ccol)].mul_add(v, acc);
                    }
                    amps[out_i] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Param;
    use hgp_math::c64;

    fn random_state(n: usize, seed: u64) -> Vec<Complex64> {
        // Deterministic pseudo-random unnormalized state (tests only
        // compare two evolutions, so the norm is irrelevant).
        let mut s = seed.wrapping_add(0x5851_F42D_4C95_7F2D);
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        (0..1usize << n).map(|_| c64(next(), next())).collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64]) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((*x - *y).norm() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn diag_1q_matches_dense() {
        for target in 0..5 {
            let gate = Gate::Rz(Param::bound(0.73));
            let d = diagonal_1q(&gate).unwrap();
            let mut fast = random_state(5, 3);
            let mut slow = fast.clone();
            apply_diag_1q(&mut fast, target, d);
            apply_dense_1q(&mut slow, target, &gate.matrix().unwrap());
            assert_close(&fast, &slow);
        }
    }

    #[test]
    fn diag_2q_matches_dense() {
        for (hi, lo) in [(1usize, 0usize), (0, 1), (4, 2), (2, 5)] {
            let gate = Gate::Rzz(Param::bound(-1.21));
            let d = diagonal_2q(&gate).unwrap();
            let mut fast = random_state(6, 9);
            let mut slow = fast.clone();
            apply_diag_2q(&mut fast, hi, lo, d);
            apply_dense_2q(&mut slow, hi, lo, &gate.matrix().unwrap());
            assert_close(&fast, &slow);
        }
    }

    #[test]
    fn dense_2q_quad_enumeration_covers_all_pairs() {
        // A SWAP via the dense kernel must equal an index permutation.
        let swap = Gate::Swap.matrix().unwrap();
        let mut state = random_state(4, 17);
        let expect: Vec<Complex64> = (0..16)
            .map(|i| {
                let (b3, b1) = ((i >> 3) & 1, (i >> 1) & 1);
                let j = (i & !0b1010) | (b3 << 1) | (b1 << 3);
                state[j]
            })
            .collect();
        apply_dense_2q(&mut state, 3, 1, &swap);
        assert_close(&state, &expect);
    }

    #[test]
    fn fused_diagonal_run_matches_sequential_application() {
        // A ring of RZZ plus scattered RZ/CZ, fused vs one-at-a-time.
        let n = 6;
        let rzz = diagonal_2q(&Gate::Rzz(Param::bound(0.4))).unwrap();
        let rz = diagonal_1q(&Gate::Rz(Param::bound(-0.9))).unwrap();
        let cz = diagonal_2q(&Gate::CZ).unwrap();
        let mut ops: Vec<DiagOp> = (0..n)
            .map(|q| DiagOp::Two {
                t_hi: q,
                t_lo: (q + 1) % n,
                d: rzz,
            })
            .collect();
        ops.push(DiagOp::One { target: 3, d: rz });
        ops.push(DiagOp::Two {
            t_hi: 5,
            t_lo: 0,
            d: cz,
        });
        let mut fused = random_state(n, 21);
        let mut sequential = fused.clone();
        apply_diag_fused(&mut fused, &ops);
        for op in &ops {
            match *op {
                DiagOp::One { target, d } => apply_diag_1q(&mut sequential, target, d),
                DiagOp::Two { t_hi, t_lo, d } => apply_diag_2q(&mut sequential, t_hi, t_lo, d),
            }
        }
        assert_close(&fused, &sequential);
    }

    #[test]
    fn exact_run_is_bit_identical_to_sequential_application() {
        // The replay contract: the blocked run must reproduce
        // gate-at-a-time application to the last bit, including targets
        // above the fuse block (13 qubits > FUSE_BLOCK's 12 bits).
        let rz = diagonal_1q(&Gate::Rz(Param::bound(0.31))).unwrap();
        let rzz = diagonal_2q(&Gate::Rzz(Param::bound(-1.7))).unwrap();
        let cz = diagonal_2q(&Gate::CZ).unwrap();
        let ops = vec![
            DiagOp::One { target: 12, d: rz },
            DiagOp::Two {
                t_hi: 3,
                t_lo: 9,
                d: rzz,
            },
            DiagOp::One { target: 0, d: rz },
            DiagOp::Two {
                t_hi: 12,
                t_lo: 2,
                d: cz,
            },
        ];
        let mut run = random_state(13, 29);
        let mut sequential = run.clone();
        apply_diag_run_exact(&mut run, &ops);
        for op in &ops {
            match *op {
                DiagOp::One { target, d } => apply_diag_1q(&mut sequential, target, d),
                DiagOp::Two { t_hi, t_lo, d } => apply_diag_2q(&mut sequential, t_hi, t_lo, d),
            }
        }
        for (a, b) in run.iter().zip(sequential.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn fused_run_broadcast_covers_high_targets() {
        // Targets above the fuse block (>= 12) exercise the broadcast
        // path; mix with low targets in one run on a 14-qubit register.
        let rz = diagonal_1q(&Gate::Rz(Param::bound(0.31))).unwrap();
        let rzz = diagonal_2q(&Gate::Rzz(Param::bound(1.7))).unwrap();
        let ops = vec![
            DiagOp::One { target: 13, d: rz },
            DiagOp::Two {
                t_hi: 12,
                t_lo: 13,
                d: rzz,
            },
            DiagOp::One { target: 2, d: rz },
            DiagOp::Two {
                t_hi: 13,
                t_lo: 1,
                d: rzz,
            },
        ];
        let mut fused = random_state(14, 8);
        let mut sequential = fused.clone();
        apply_diag_fused(&mut fused, &ops);
        for op in &ops {
            for (i, a) in sequential.iter_mut().enumerate() {
                *a *= op.factor(i);
            }
        }
        assert_close(&fused, &sequential);
    }

    #[test]
    fn cz_diagonal_flips_sign_on_11() {
        let d = diagonal_2q(&Gate::CZ).unwrap();
        let mut amps = vec![Complex64::ONE; 4];
        apply_diag_2q(&mut amps, 1, 0, d);
        assert_eq!(amps[0], Complex64::ONE);
        assert_eq!(amps[3], c64(-1.0, 0.0));
    }

    #[test]
    fn unbound_params_have_no_diagonal() {
        let free = Gate::Rz(Param::free(hgp_circuit::ParamId(0)));
        assert!(diagonal_1q(&free).is_none());
        assert!(diagonal_1q(&Gate::H).is_none());
        assert!(diagonal_2q(&Gate::CX).is_none());
    }
}
