//! Stochastic quantum-trajectory execution.
//!
//! The density-matrix engine pays `O(4^n)` per instruction, capping
//! noisy simulation at ~13 qubits. Quantum trajectories (Monte-Carlo
//! wave functions) unravel the same master equation into an ensemble of
//! *pure* states: each trajectory draws one Kraus branch per channel —
//! branch `k` with probability `||K_k psi||^2` — and renormalizes, so a
//! single trajectory costs `O(2^n)` per instruction and the ensemble
//! mean of any observable converges to the density-matrix value. 256
//! trajectories of a 12-qubit circuit are far cheaper than one
//! density-matrix run, and they are embarrassingly parallel.
//!
//! The module separates three concerns:
//!
//! - [`ChannelOp`]: one noise channel in both of its applications — the
//!   exact Kraus set (`rho -> sum_k K_k rho K_k†`, used by
//!   [`TrajectoryProgram::apply_exact`]) and the sampling strategy
//!   (state-independent branch draws for mixed-unitary channels like
//!   depolarizing; state-dependent branch weights for general channels
//!   like amplitude damping),
//! - [`TrajectoryProgram`]: a bound, layout-resolved instruction stream
//!   of gates, fixed unitaries, and channels — the cacheable artifact a
//!   noise-aware compiler produces once per (shape, noise model),
//! - [`TrajectoryEngine`]: runs `N` trajectories with per-trajectory
//!   seeds derived via [`crate::seed::stream_seed`], so **any parallel
//!   schedule is bit-identical to the sequential loop** — trajectory
//!   `i`'s entire randomness is a pure function of `(base_seed, i)`.
//!
//! # Example
//!
//! ```
//! use hgp_math::{c64, Matrix};
//! use hgp_sim::trajectory::{ChannelOp, TrajectoryEngine, TrajectoryProgram};
//! use hgp_sim::{DensityMatrix, SimBackend};
//! use hgp_circuit::Gate;
//! use hgp_math::pauli::{Pauli, PauliString, PauliSum};
//!
//! // H, then an 80% dephasing channel on the same qubit.
//! let kraus = vec![
//!     Matrix::identity(2).scale(c64(0.2f64.sqrt(), 0.0)),
//!     hgp_math::pauli::sigma_z().scale(c64(0.8f64.sqrt(), 0.0)),
//! ];
//! let mut program = TrajectoryProgram::new(1);
//! program.push_gate(Gate::H, &[0]);
//! program.push_channel(ChannelOp::general(kraus), &[0]);
//!
//! let x = PauliSum::from_terms(vec![PauliString::new(1, vec![(0, Pauli::X)], 1.0)]);
//! // Exact (density-matrix) reference ...
//! let mut rho = DensityMatrix::init(1);
//! program.apply_exact(&mut rho);
//! let exact = SimBackend::expectation(&rho, &x);
//! // ... and the trajectory ensemble converge to the same value.
//! let mean = TrajectoryEngine::new(4096, 7).expectation(&program, &x);
//! assert!((mean - exact).abs() < 0.05);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use hgp_circuit::Gate;
use hgp_math::pauli::PauliSum;
use hgp_math::{Complex64, Matrix};

use crate::backend::SimBackend;
use crate::counts::Counts;
use crate::seed::{mix64, stream_seed};
use crate::statevector::StateVector;

/// `true` when `m` is exactly the identity (bitwise `1.0`/`0.0`
/// entries, as the standard channel constructors produce).
fn is_exact_identity(m: &Matrix) -> bool {
    let n = m.rows();
    if m.cols() != n {
        return false;
    }
    for r in 0..n {
        for c in 0..n {
            let want = if r == c {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            let got = m[(r, c)];
            if got.re != want.re || got.im != want.im {
                return false;
            }
        }
    }
    true
}

/// Tolerance under which a general channel's `K_0` counts as a scalar
/// multiple of the identity, enabling the identity-branch skip (see
/// [`ChannelOp::skips_identity_k0`]).
const K0_IDENTITY_TOL: f64 = 1e-12;

/// `true` when `m = c * I` for the scalar `c = m[0][0]`, entrywise
/// within `tol`, with `|c|` large enough that branch-0 draws are not
/// vanishing-probability events (skipping a near-annihilating branch
/// would replace a renormalization that matters).
fn is_identity_multiple(m: &Matrix, tol: f64) -> bool {
    let n = m.rows();
    if m.cols() != n {
        return false;
    }
    let c = m[(0, 0)];
    if c.norm() < 0.5 {
        return false;
    }
    for r in 0..n {
        for col in 0..n {
            let want = if r == col { c } else { Complex64::ZERO };
            if (m[(r, col)] - want).norm() > tol {
                return false;
            }
        }
    }
    true
}

/// State-independent sampling data of a mixed-unitary channel.
#[derive(Debug, Clone)]
pub(crate) struct MixedUnitary {
    /// Branch probabilities (sum to 1).
    pub(crate) probs: Vec<f64>,
    /// Unit-norm branch unitaries.
    pub(crate) unitaries: Vec<Matrix>,
    /// Branches whose unitary is exactly the identity (skipped — the
    /// dominant case for weak depolarizing noise, where almost every
    /// draw is a no-op).
    pub(crate) identity: Vec<bool>,
}

/// One noise channel, carrying both its exact and its sampled
/// application. See the module docs.
#[derive(Debug, Clone)]
pub struct ChannelOp {
    /// The CPTP Kraus set (`sum_k K_k† K_k = I`) — the exact
    /// density-matrix semantics.
    kraus: Vec<Matrix>,
    /// Present for mixed-unitary channels: branch draws do not need the
    /// state.
    mixed: Option<MixedUnitary>,
    /// General channels whose `K_0` is a scalar multiple of the identity
    /// (within [`K0_IDENTITY_TOL`]) skip the branch-0 application and
    /// renormalization: `c * I` followed by renormalization changes the
    /// state only by a global phase, which no observable — branch
    /// weights, probabilities, expectations — can see.
    k0_identity: bool,
}

impl ChannelOp {
    /// A general channel: trajectory branches are drawn with the
    /// state-dependent weights `||K_k psi||^2`.
    ///
    /// When `K_0` is a scalar multiple of the identity (within
    /// `1e-12`), branch-0 draws skip the application and
    /// renormalization entirely — see [`ChannelOp::skips_identity_k0`].
    ///
    /// # Panics
    ///
    /// Panics if `kraus` is empty or the operators are not square and
    /// equally sized.
    pub fn general(kraus: Vec<Matrix>) -> Self {
        assert!(!kraus.is_empty(), "channel needs at least one operator");
        let dim = kraus[0].rows();
        assert!(dim.is_power_of_two() && dim >= 2, "operator dimension");
        for k in &kraus {
            assert!(
                k.rows() == dim && k.cols() == dim,
                "Kraus operators must share one square dimension"
            );
        }
        // A single-operator "channel" is a closed evolution whose one
        // branch must always apply; the skip is for genuine channels
        // where branch 0 is the dominant no-op.
        let k0_identity = kraus.len() > 1 && is_identity_multiple(&kraus[0], K0_IDENTITY_TOL);
        Self {
            kraus,
            mixed: None,
            k0_identity,
        }
    }

    /// A mixed-unitary channel (`rho -> sum_k p_k U_k rho U_k†`):
    /// trajectory branches are drawn with the fixed probabilities
    /// `probs`, which is both cheaper (no weight sweep) and exact —
    /// Pauli and depolarizing channels are of this form.
    ///
    /// `kraus` is the exact set (`sqrt(p_k) U_k`, in whatever
    /// construction the caller's exact path is pinned to);
    /// `probs`/`unitaries` are the sampling view of the same channel.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, `probs` has negative entries or does
    /// not sum to 1 within `1e-9`, or `kraus` fails the
    /// [`ChannelOp::general`] checks.
    pub fn mixed_unitary(kraus: Vec<Matrix>, probs: Vec<f64>, unitaries: Vec<Matrix>) -> Self {
        let base = Self::general(kraus);
        assert_eq!(probs.len(), unitaries.len(), "one probability per branch");
        assert!(!probs.is_empty(), "channel needs at least one branch");
        let sum: f64 = probs.iter().sum();
        assert!(
            probs.iter().all(|&p| p >= 0.0) && (sum - 1.0).abs() < 1e-9,
            "branch probabilities must form a distribution (sum {sum})"
        );
        let identity = unitaries.iter().map(is_exact_identity).collect();
        Self {
            mixed: Some(MixedUnitary {
                probs,
                unitaries,
                identity,
            }),
            ..base
        }
    }

    /// The exact Kraus operators.
    pub fn kraus(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Whether branch-0 draws of this *general* channel are skipped
    /// because `K_0` is a scalar multiple of the identity (within
    /// `1e-12`).
    ///
    /// Applying `c * I` and renormalizing maps `psi -> (c/|c|) psi` — a
    /// global phase, invisible to every downstream consumer (branch
    /// weights, measurement draws, expectations). Skipping both steps is
    /// therefore exact at the distribution level and removes two full
    /// state sweeps from the dominant branch of weak noise. Always
    /// `false` for mixed-unitary channels (they have their own per-branch
    /// identity skip) and single-operator sets.
    pub fn skips_identity_k0(&self) -> bool {
        self.mixed.is_none() && self.k0_identity
    }

    /// The sampling view of a mixed-unitary channel, for the replay
    /// compiler.
    pub(crate) fn mixed_parts(&self) -> Option<&MixedUnitary> {
        self.mixed.as_ref()
    }

    /// Number of qubits the channel acts on.
    pub fn n_qubits(&self) -> usize {
        self.kraus[0].rows().trailing_zeros() as usize
    }

    /// Whether branch draws are state-independent (mixed unitary).
    pub fn is_mixed_unitary(&self) -> bool {
        self.mixed.is_some()
    }

    /// Draws one branch and applies it to the pure state, renormalizing
    /// where the branch is non-unitary. Consumes exactly one RNG draw
    /// regardless of the branch taken, so downstream draws stay aligned
    /// across trajectories.
    pub fn apply_sampled<R: Rng + ?Sized>(
        &self,
        psi: &mut StateVector,
        targets: &[usize],
        rng: &mut R,
    ) {
        if let Some(mix) = &self.mixed {
            let r: f64 = rng.gen();
            let mut acc = 0.0;
            let mut pick = mix.probs.len() - 1;
            for (k, &p) in mix.probs.iter().enumerate() {
                acc += p;
                if r < acc {
                    pick = k;
                    break;
                }
            }
            if !mix.identity[pick] {
                psi.apply_operator(&mix.unitaries[pick], targets);
            }
            return;
        }
        // State-dependent branch weights w_k = ||K_k psi||^2; CPTP
        // guarantees they sum to 1 on a normalized state.
        let weights: Vec<f64> = self
            .kraus
            .iter()
            .map(|k| psi.branch_weight(k, targets))
            .collect();
        let total: f64 = weights.iter().sum();
        assert!(total > 1e-12, "channel annihilated the state");
        let r: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        let mut pick = weights.len() - 1;
        for (k, &w) in weights.iter().enumerate() {
            acc += w;
            if r < acc {
                pick = k;
                break;
            }
        }
        if pick == 0 && self.k0_identity {
            // K_0 = c * I: application + renormalization would only
            // change the global phase. Skip both state sweeps.
            return;
        }
        psi.apply_operator(&self.kraus[pick], targets);
        psi.renormalize();
    }
}

/// One instruction of a [`TrajectoryProgram`].
#[derive(Debug, Clone)]
pub enum TrajectoryOp {
    /// A bound gate, dispatched through the fused kernels.
    Gate {
        /// The gate (parameters bound).
        gate: Gate,
        /// Logical operands.
        qubits: Vec<usize>,
    },
    /// A fixed unitary (pulse-backed gate physics, frame drift, ...).
    Unitary {
        /// The `2^k x 2^k` unitary.
        matrix: Matrix,
        /// Targets, `targets[0]` = most-significant operator bit.
        targets: Vec<usize>,
    },
    /// A noise channel.
    Channel {
        /// The channel in both applications.
        channel: ChannelOp,
        /// Targets, `targets[0]` = most-significant operator bit.
        targets: Vec<usize>,
    },
}

/// A bound noisy instruction stream: the compiled artifact trajectories
/// replay. Built once per (circuit shape, noise model, binding); each
/// trajectory is then a single pass over `ops`.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryProgram {
    n_qubits: usize,
    ops: Vec<TrajectoryOp>,
}

impl TrajectoryProgram {
    /// An empty program over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "program needs at least one qubit");
        Self {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The instruction stream.
    pub fn ops(&self) -> &[TrajectoryOp] {
        &self.ops
    }

    /// Number of noise channels in the stream.
    pub fn n_channels(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TrajectoryOp::Channel { .. }))
            .count()
    }

    /// Appends a bound gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate has unbound parameters or operands are out of
    /// range.
    pub fn push_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        assert!(
            gate.matrix().is_some(),
            "trajectory programs take bound gates only"
        );
        for &q in qubits {
            assert!(q < self.n_qubits, "operand out of range");
        }
        self.ops.push(TrajectoryOp::Gate {
            gate,
            qubits: qubits.to_vec(),
        });
        self
    }

    /// Appends a fixed unitary.
    pub fn push_unitary(&mut self, matrix: Matrix, targets: &[usize]) -> &mut Self {
        assert_eq!(matrix.rows(), 1 << targets.len(), "dimension mismatch");
        for &q in targets {
            assert!(q < self.n_qubits, "target out of range");
        }
        self.ops.push(TrajectoryOp::Unitary {
            matrix,
            targets: targets.to_vec(),
        });
        self
    }

    /// Appends a noise channel.
    pub fn push_channel(&mut self, channel: ChannelOp, targets: &[usize]) -> &mut Self {
        assert_eq!(channel.n_qubits(), targets.len(), "channel arity mismatch");
        for &q in targets {
            assert!(q < self.n_qubits, "target out of range");
        }
        self.ops.push(TrajectoryOp::Channel {
            channel,
            targets: targets.to_vec(),
        });
        self
    }

    /// Runs one trajectory from `|0...0>` with an explicit RNG (the RNG
    /// is also what a caller continues using for measurement draws, so
    /// a trajectory's full randomness stays a function of its seed).
    pub fn run_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> StateVector {
        let mut psi = StateVector::zero_state(self.n_qubits);
        for op in &self.ops {
            match op {
                TrajectoryOp::Gate { gate, qubits } => {
                    psi.apply_gate(gate, qubits)
                        .expect("trajectory programs are bound");
                }
                TrajectoryOp::Unitary { matrix, targets } => {
                    psi.apply_operator(matrix, targets);
                }
                TrajectoryOp::Channel { channel, targets } => {
                    channel.apply_sampled(&mut psi, targets, rng);
                }
            }
        }
        psi
    }

    /// Runs one seeded trajectory from `|0...0>`.
    pub fn run_trajectory(&self, seed: u64) -> StateVector {
        // hgp-analysis: allow(d2) -- `seed` is a caller-supplied leaf seed; the
        // ensemble engines derive theirs via `stream_seed(mix64(base), i)`.
        let mut rng = StdRng::seed_from_u64(seed);
        self.run_with_rng(&mut rng)
    }

    /// Applies the program *exactly* to any engine: gates through the
    /// fused dispatch, unitaries as unitaries, channels as their full
    /// Kraus sets. On [`crate::DensityMatrix`] this is the reference
    /// semantics trajectories converge to; engines without channel
    /// support panic on genuine (multi-operator) channels.
    pub fn apply_exact<B: SimBackend>(&self, state: &mut B) {
        assert_eq!(state.n_qubits(), self.n_qubits, "width mismatch");
        for op in &self.ops {
            match op {
                TrajectoryOp::Gate { gate, qubits } => {
                    state
                        .apply_gate(gate, qubits)
                        .expect("trajectory programs are bound");
                }
                TrajectoryOp::Unitary { matrix, targets } => {
                    state.apply_unitary(matrix, targets);
                }
                TrajectoryOp::Channel { channel, targets } => {
                    state.apply_kraus(channel.kraus(), targets);
                }
            }
        }
    }
}

/// Runs ensembles of stochastic trajectories with deterministic
/// per-trajectory seeds. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryEngine {
    n_trajectories: usize,
    base_seed: u64,
}

impl TrajectoryEngine {
    /// An engine running `n_trajectories` trajectories rooted at
    /// `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_trajectories` is zero.
    pub fn new(n_trajectories: usize, base_seed: u64) -> Self {
        assert!(n_trajectories > 0, "need at least one trajectory");
        Self {
            n_trajectories,
            base_seed,
        }
    }

    /// Ensemble size.
    pub fn n_trajectories(&self) -> usize {
        self.n_trajectories
    }

    /// The seed stream's base.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The seed of trajectory `index` — a pure function of
    /// `(base_seed, index)`, which is what makes every schedule
    /// bit-identical to the sequential loop.
    ///
    /// The base is finalized through a SplitMix64 mixer *before* the
    /// stream derivation: ensembles rooted at nearby bases (consecutive
    /// serve job ids, say) would otherwise share almost all of their
    /// trajectory seeds — `base + i` and `(base + 1) + (i - 1)` collide
    /// — and their aggregated statistics would be spuriously identical.
    pub fn trajectory_seed(&self, index: usize) -> u64 {
        stream_seed(mix64(self.base_seed), index as u64)
    }

    /// Per-trajectory expectation values, in trajectory order.
    pub fn expectations(&self, program: &TrajectoryProgram, observable: &PauliSum) -> Vec<f64> {
        (0..self.n_trajectories)
            .into_par_iter()
            .map(|i| {
                program
                    .run_trajectory(self.trajectory_seed(i))
                    .expectation(observable)
            })
            .collect()
    }

    /// Ensemble-mean expectation (the trajectory estimate of the
    /// density-matrix value). Summed in trajectory order, so the result
    /// is bit-identical however the trajectories were scheduled.
    pub fn expectation(&self, program: &TrajectoryProgram, observable: &PauliSum) -> f64 {
        let values = self.expectations(program, observable);
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Ensemble mean plus its standard error
    /// (`sigma / sqrt(N)`, the Monte-Carlo convergence scale).
    pub fn expectation_with_error(
        &self,
        program: &TrajectoryProgram,
        observable: &PauliSum,
    ) -> (f64, f64) {
        let values = self.expectations(program, observable);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        if values.len() < 2 {
            return (mean, 0.0);
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    /// One computational-basis measurement shot per trajectory
    /// (`n_trajectories` shots total), drawn with the trajectory's own
    /// RNG.
    pub fn sample_counts(&self, program: &TrajectoryProgram) -> Counts {
        self.sample_counts_with(program, |bits, _| bits)
    }

    /// [`TrajectoryEngine::sample_counts`] with a post-measurement hook
    /// `corrupt(bits, rng) -> bits` applied to every shot with the
    /// trajectory's RNG — how shot-level readout confusion enters
    /// without this crate knowing about readout models.
    pub fn sample_counts_with<F>(&self, program: &TrajectoryProgram, corrupt: F) -> Counts
    where
        F: Fn(usize, &mut StdRng) -> usize + Sync,
    {
        let outcomes: Vec<usize> = (0..self.n_trajectories)
            .into_par_iter()
            .map(|i| {
                // hgp-analysis: allow(d2) -- `trajectory_seed` is
                // `stream_seed(mix64(base), i)`: pure in (base, i).
                let mut rng = StdRng::seed_from_u64(self.trajectory_seed(i));
                let psi = program.run_with_rng(&mut rng);
                let bits = draw_outcome(&psi, &mut rng);
                corrupt(bits, &mut rng)
            })
            .collect();
        let mut counts = Counts::new(program.n_qubits());
        for bits in outcomes {
            counts.record(bits, 1);
        }
        counts
    }
}

/// Draws one basis state from `|psi|^2` (renormalized against the tiny
/// drift repeated branch renormalizations accumulate). Shared with the
/// replay engine, whose measurement draws must be bit-compatible.
pub(crate) fn draw_outcome<R: Rng + ?Sized>(psi: &StateVector, rng: &mut R) -> usize {
    let target = rng.gen::<f64>() * psi.norm_sqr();
    let mut acc = 0.0;
    for (b, a) in psi.amplitudes().iter().enumerate() {
        acc += a.norm_sqr();
        if target < acc {
            return b;
        }
    }
    psi.amplitudes().len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DensityMatrix;
    use hgp_math::c64;
    use hgp_math::pauli::{sigma_x, sigma_y, sigma_z, Pauli, PauliString, PauliSum};

    fn z(n: usize, q: usize) -> PauliSum {
        PauliSum::from_terms(vec![PauliString::new(n, vec![(q, Pauli::Z)], 1.0)])
    }

    fn depolarizing_op(p: f64) -> ChannelOp {
        let kraus = vec![
            Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
            sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
        ];
        let unitaries = vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
        let probs = vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0];
        ChannelOp::mixed_unitary(kraus, probs, unitaries)
    }

    fn amplitude_damping_op(gamma: f64) -> ChannelOp {
        let k0 = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, 0.0)],
            &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
        ]);
        let k1 = Matrix::from_rows(&[
            &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
            &[c64(0.0, 0.0), c64(0.0, 0.0)],
        ]);
        ChannelOp::general(vec![k0, k1])
    }

    #[test]
    fn branch_weight_matches_direct_norm() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_gate(&Gate::H, &[0]).unwrap();
        psi.apply_gate(&Gate::CX, &[0, 2]).unwrap();
        let k = sigma_x().scale(c64(0.3f64.sqrt(), 0.0));
        let w = psi.branch_weight(&k, &[2]);
        let mut applied = psi.clone();
        applied.apply_operator(&k, &[2]);
        assert!((w - applied.norm_sqr()).abs() < 1e-14);
    }

    #[test]
    fn mixed_unitary_skips_identity_branches() {
        let op = depolarizing_op(0.0);
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Gate::H, &[0]).unwrap();
        let before = psi.clone();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            op.apply_sampled(&mut psi, &[0], &mut rng);
        }
        assert_eq!(psi, before, "p = 0 channel must be a bitwise no-op");
    }

    /// A general (non-mixed-unitary) channel whose `K_0` is an exact
    /// scalar multiple of the identity: `sqrt(1-p) I` plus a damping-like
    /// remainder, deliberately *not* registered as mixed-unitary.
    fn general_identity_k0_op(p: f64) -> ChannelOp {
        let k0 = Matrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0));
        let k1 = sigma_x().scale(c64(p.sqrt(), 0.0));
        ChannelOp::general(vec![k0, k1])
    }

    #[test]
    fn general_identity_k0_is_detected_and_damping_is_not() {
        assert!(general_identity_k0_op(0.2).skips_identity_k0());
        // K_0 of amplitude damping is diag(1, sqrt(1-gamma)) — not a
        // multiple of the identity.
        assert!(!amplitude_damping_op(0.2).skips_identity_k0());
        // Mixed-unitary channels use their own per-branch skip.
        assert!(!depolarizing_op(0.2).skips_identity_k0());
        // A complex global phase on K_0 still counts (phases are
        // unobservable after renormalization).
        let phased = vec![
            Matrix::identity(2).scale(Complex64::cis(0.7).scale(0.8f64.sqrt())),
            sigma_x().scale(c64(0.2f64.sqrt(), 0.0)),
        ];
        assert!(ChannelOp::general(phased).skips_identity_k0());
        // Single-operator sets never skip.
        assert!(!ChannelOp::general(vec![Matrix::identity(2)]).skips_identity_k0());
    }

    #[test]
    fn general_identity_skip_matches_the_unskipped_path() {
        // Parity against the unskipped application: run the same seeds
        // through (a) the channel with the skip and (b) a channel forced
        // down the apply+renormalize path by an off-tolerance K_0
        // perturbation too small to change any branch pick. Every
        // observable statistic must agree to renormalization round-off.
        let p = 0.3;
        let skipping = general_identity_k0_op(p);
        assert!(skipping.skips_identity_k0());
        let eps = 1e-9; // far above the 1e-12 identity tolerance
        let k0 = Matrix::from_rows(&[
            &[c64((1.0 - p).sqrt(), 0.0), c64(0.0, 0.0)],
            &[c64(0.0, 0.0), c64((1.0 - p).sqrt() + eps, 0.0)],
        ]);
        let k1 = sigma_x().scale(c64(p.sqrt(), 0.0));
        let unskipped = ChannelOp::general(vec![k0, k1]);
        assert!(!unskipped.skips_identity_k0());

        let obs = z(1, 0);
        let mut with_skip = TrajectoryProgram::new(1);
        with_skip.push_gate(Gate::H, &[0]);
        with_skip.push_channel(skipping, &[0]);
        let mut without = TrajectoryProgram::new(1);
        without.push_gate(Gate::H, &[0]);
        without.push_channel(unskipped, &[0]);
        let engine = TrajectoryEngine::new(512, 17);
        let a = engine.expectations(&with_skip, &obs);
        let b = engine.expectations(&without, &obs);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
        // And the exact (density-matrix) semantics of the skipping
        // channel are untouched — the skip is a sampling-path detail.
        let mut rho = DensityMatrix::init(1);
        with_skip.apply_exact(&mut rho);
        let engine = TrajectoryEngine::new(8192, 23);
        let (mean, stderr) = engine.expectation_with_error(&with_skip, &obs);
        let exact = SimBackend::expectation(&rho, &obs);
        assert!(
            (mean - exact).abs() < 4.0 * stderr.max(1e-3),
            "mean {mean} vs exact {exact}"
        );
    }

    #[test]
    fn full_depolarizing_trajectories_mix_the_state() {
        // p = 1 on |0>: ensemble Z expectation approaches 0.
        let mut program = TrajectoryProgram::new(1);
        program.push_channel(depolarizing_op(1.0), &[0]);
        let mean = TrajectoryEngine::new(8192, 5).expectation(&program, &z(1, 0));
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn amplitude_damping_trajectories_converge_to_exact() {
        // H then AD(0.35): state-dependent branches.
        let gamma = 0.35;
        let mut program = TrajectoryProgram::new(1);
        program.push_gate(Gate::H, &[0]);
        program.push_channel(amplitude_damping_op(gamma), &[0]);
        let mut rho = DensityMatrix::init(1);
        program.apply_exact(&mut rho);
        let exact = SimBackend::expectation(&rho, &z(1, 0));
        let engine = TrajectoryEngine::new(8192, 11);
        let (mean, stderr) = engine.expectation_with_error(&program, &z(1, 0));
        assert!(
            (mean - exact).abs() < 4.0 * stderr.max(1e-3),
            "mean {mean} vs exact {exact} (stderr {stderr})"
        );
    }

    #[test]
    fn exact_application_matches_manual_density_evolution() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::CX, &[0, 1]);
        program.push_channel(amplitude_damping_op(0.2), &[1]);
        let mut by_program = DensityMatrix::init(2);
        program.apply_exact(&mut by_program);
        let mut manual = DensityMatrix::zero_state(2);
        manual.apply_gate(&Gate::H, &[0]).unwrap();
        manual.apply_gate(&Gate::CX, &[0, 1]).unwrap();
        manual.apply_kraus(amplitude_damping_op(0.2).kraus(), &[1]);
        for i in 0..4 {
            for j in 0..4 {
                assert!((by_program.get(i, j) - manual.get(i, j)).norm() < 1e-15);
            }
        }
    }

    #[test]
    fn parallel_ensemble_is_bit_identical_to_sequential() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_channel(depolarizing_op(0.3), &[0]);
        program.push_gate(Gate::CX, &[0, 1]);
        program.push_channel(amplitude_damping_op(0.15), &[1]);
        let engine = TrajectoryEngine::new(64, 42);
        let obs = z(2, 1);
        // The engine (which may fan out over rayon workers) ...
        let by_engine = engine.expectations(&program, &obs);
        // ... against an explicit sequential loop over the same seeds.
        let sequential: Vec<f64> = (0..64)
            .map(|i| {
                program
                    .run_trajectory(engine.trajectory_seed(i))
                    .expectation(&obs)
            })
            .collect();
        assert_eq!(by_engine.len(), sequential.len());
        for (a, b) in by_engine.iter().zip(sequential.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the scalar reductions are reproducible.
        assert_eq!(
            engine.expectation(&program, &obs).to_bits(),
            engine.expectation(&program, &obs).to_bits()
        );
        assert_eq!(
            engine.sample_counts(&program),
            engine.sample_counts(&program)
        );
    }

    #[test]
    fn nearby_bases_give_disjoint_seed_ensembles() {
        // Consecutive serve jobs get consecutive base seeds; their
        // trajectory ensembles must not overlap.
        let a = TrajectoryEngine::new(256, 5);
        let b = TrajectoryEngine::new(256, 6);
        let seeds_a: std::collections::BTreeSet<u64> =
            (0..256).map(|i| a.trajectory_seed(i)).collect();
        let seeds_b: std::collections::BTreeSet<u64> =
            (0..256).map(|i| b.trajectory_seed(i)).collect();
        assert_eq!(seeds_a.len(), 256);
        assert_eq!(seeds_a.intersection(&seeds_b).count(), 0);
    }

    #[test]
    fn counts_respect_the_sampled_distribution() {
        // Bell pair, no noise: half 00, half 11, nothing else.
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::CX, &[0, 1]);
        let counts = TrajectoryEngine::new(4096, 3).sample_counts(&program);
        assert_eq!(counts.total(), 4096);
        assert_eq!(counts.count(0b01), 0);
        assert_eq!(counts.count(0b10), 0);
        assert!((counts.frequency(0b00) - 0.5).abs() < 0.05);
    }

    #[test]
    fn corrupt_hook_sees_every_shot() {
        let program = TrajectoryProgram::new(1);
        let counts = TrajectoryEngine::new(100, 9).sample_counts_with(&program, |bits, _| bits ^ 1);
        assert_eq!(counts.count(1), 100, "every |0> shot flipped to 1");
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn unbound_gate_is_rejected() {
        let mut program = TrajectoryProgram::new(1);
        program.push_gate(
            Gate::Rx(hgp_circuit::Param::Free {
                id: hgp_circuit::ParamId(0),
                scale: 1.0,
                offset: 0.0,
            }),
            &[0],
        );
    }
}
