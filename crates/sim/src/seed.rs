//! Deterministic per-stream seed derivation.
//!
//! Every sampling call site in the workspace — the training loop's
//! objective probes, parameter-shift gradients, and the serve layer's
//! jobs — draws shots from a seeded RNG. When those call sites run
//! concurrently, reproducibility demands that each one's seed be a pure
//! function of its *position* in the logical evaluation stream, never of
//! thread scheduling or call order. This module is the single home of
//! that derivation; before it existed, `hgp_core::training` and the
//! executor's callers each derived seeds ad hoc.
//!
//! The derivation is intentionally the trivial one,
//! `base.wrapping_add(stream)`:
//!
//! - it is **bit-compatible** with the historical training-loop
//!   derivation, so refactoring call sites onto this helper changed no
//!   sampled stream,
//! - distinct stream ids under the same base give distinct seeds (until
//!   the `u64` space wraps), which is all the workspace's RNG
//!   ([`rand::rngs::StdRng`]) needs — it finalizes the seed through a
//!   SplitMix64-style mixer, so consecutive seeds do not produce
//!   correlated streams.
//!
//! Stream ids are assigned by the owning scheduler: the training loop
//! numbers objective evaluations `1, 2, 3, ...` in submission order; the
//! serve layer numbers jobs by their monotonically increasing job id in
//! submission order. Either way, a batch may execute on any worker in
//! any order and still reproduce the sequential run bit for bit.

/// Derives the sampling seed for position `stream` of an evaluation
/// stream rooted at `base`.
///
/// Deterministic, order-free, and bit-compatible with the historical
/// `config.seed.wrapping_add(eval_id)` used by the training loop.
///
/// ```
/// use hgp_sim::seed::stream_seed;
/// assert_eq!(stream_seed(42, 0), 42);
/// assert_eq!(stream_seed(42, 7), 49);
/// assert_eq!(stream_seed(u64::MAX, 1), 0); // wraps, never panics
/// ```
#[inline]
#[must_use]
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    base.wrapping_add(stream)
}

/// The SplitMix64 finalizer: a bijective avalanche mixer separating
/// nearby ensemble bases into unrelated seed streams.
///
/// Trajectory ensembles root their per-shot seed streams at
/// `mix64(base)` rather than `base`: ensembles rooted at nearby bases
/// (consecutive serve job ids, say) would otherwise share almost all
/// of their trajectory seeds — `base + i` and `(base + 1) + (i - 1)`
/// collide — and their aggregated statistics would be spuriously
/// identical. Both trajectory engines ([`crate::TrajectoryEngine`] and
/// [`crate::ReplayEngine`]) derive their streams through this exact
/// function, which is what keeps them interchangeable mid-stream.
#[inline]
#[must_use]
pub fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_streams_get_distinct_seeds() {
        let base = 42;
        let seeds: Vec<u64> = (0..1000).map(|s| stream_seed(base, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn derivation_is_schedule_independent() {
        // Sampling stream i of a batch must give the same counts whether
        // the batch runs forward, backward, or interleaved — the seed
        // depends only on (base, i).
        let probs = vec![0.125; 8];
        let sample = |stream: u64| {
            let mut rng = StdRng::seed_from_u64(stream_seed(7, stream));
            Counts::sample_from_probabilities(&probs, 256, 3, &mut rng)
        };
        let forward: Vec<Counts> = (0..8).map(sample).collect();
        let mut backward: Vec<Counts> = (0..8).rev().map(sample).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn matches_historical_training_derivation() {
        // Bit-compatibility contract: callers that migrated from
        // `base.wrapping_add(id)` must see identical seeds forever.
        for (base, id) in [(42u64, 17u64), (0, 0), (u64::MAX, 2), (1 << 63, 1 << 63)] {
            assert_eq!(stream_seed(base, id), base.wrapping_add(id));
        }
    }
}
