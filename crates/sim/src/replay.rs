//! Op-fused trajectory replay: the zero-dispatch execution layer.
//!
//! [`crate::TrajectoryProgram`] is the *recording* of a noisy schedule —
//! readable, generic, and paying per-shot costs it does not need to pay:
//! every trajectory re-allocates its statevector, re-derives each gate's
//! matrix and diagonal, re-walks each mixed channel's probability list,
//! and drives general-channel branch weights through the generic
//! `branch_weight` block machinery (per-call index vectors, per-base bit
//! spreading). At 6–12 qubits those constant factors — not flops —
//! dominate the per-shot cost.
//!
//! [`ReplayProgram`] compiles the recording once into a flat op tape:
//!
//! - maximal runs of consecutive diagonal gates are fused into single
//!   blocked sweeps over the amplitudes
//!   ([`kernels::apply_diag_run_exact`] — bit-exact to gate-at-a-time
//!   application, unlike the broadcast-folding `apply_diag_fused`),
//! - dense gates and fixed unitaries carry their resolved matrices, so
//!   the hot loop never calls `Gate::matrix()`,
//! - channels are precompiled into sampling tables: cumulative branch
//!   probabilities for mixed-unitary channels (with the identity-branch
//!   skip), strided single-qubit weight kernels and precomputed block
//!   offsets for general channels (with the `K_0`-identity skip),
//!
//! and [`ReplayEngine`] replays the tape over per-worker
//! [`ReplayScratch`] arenas — the per-shot loop performs **zero
//! allocation and zero matrix dispatch** (the one exception: operators
//! wider than two qubits fall back to the generic embed path, which no
//! recorded schedule in this workspace produces).
//!
//! # The bit-parity contract
//!
//! The replay engine is an *optimization*, not a new semantics:
//! [`crate::TrajectoryEngine`] remains the reference implementation, and
//! for every program, observable, seed, and scheduling the replay path
//! produces **bit-identical** results — same
//! [`crate::seed::stream_seed`]/SplitMix64 seed stream, same RNG draw
//! sequence, same branch choices, same floating-point operations in the
//! same order. Property tests in `crates/sim/tests/replay_parity.rs` pin
//! this across random programs; the serve-layer suites pin it end to
//! end.
//!
//! # Exact-path mode
//!
//! The same compile-once idea applies to the exact density-matrix walk:
//! the [`exact`] submodule compiles a recorded program into an
//! [`ExactReplayProgram`] superoperator tape (fused elementwise
//! diagonal-run sweeps, resolved dense conjugations, channels collapsed
//! into superoperators or blockwise Kraus passes) that
//! [`ExactReplayEngine`] replays without per-dispatch interpretation —
//! pinned against the `apply_exact` walk, which stays the reference.
//! See the [`exact`] module docs for the parity contract.
//!
//! # Batched-shot mode
//!
//! The scalar per-shot loop above still decodes the whole tape once per
//! trajectory. The [`batch`] submodule inverts that loop nest: a
//! [`ReplayBatch`] holds a cache-sized block of shots in one
//! structure-of-arrays arena and replays the tape *op-major* — each tape
//! entry sweeps every resident shot before the next is decoded. The
//! [`ReplayEngine::expectations_batched`] /
//! [`ReplayEngine::sample_counts_batched`] entry points partition the
//! ensemble into such blocks (deterministic boundaries, per-block
//! arenas) and are bit-identical to their scalar counterparts for every
//! block size, split, worker count, and seed — the scalar engine stays
//! as the pinned reference. See the [`batch`] module docs for the layout
//! and divergence-masking design.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Gate;
//! use hgp_math::pauli::{Pauli, PauliString, PauliSum};
//! use hgp_sim::{ReplayEngine, ReplayProgram, TrajectoryEngine, TrajectoryProgram};
//!
//! let mut program = TrajectoryProgram::new(2);
//! program.push_gate(Gate::H, &[0]);
//! program.push_gate(Gate::CX, &[0, 1]);
//! let replay = ReplayProgram::compile(&program);
//!
//! let zz = PauliSum::from_terms(vec![PauliString::new(
//!     2,
//!     vec![(0, Pauli::Z), (1, Pauli::Z)],
//!     1.0,
//! )]);
//! let fast = ReplayEngine::new(64, 7).expectation(&replay, &zz);
//! let reference = TrajectoryEngine::new(64, 7).expectation(&program, &zz);
//! assert_eq!(fast.to_bits(), reference.to_bits());
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use hgp_math::pauli::PauliSum;
use hgp_math::{Complex64, Matrix};
use hgp_obs::profile::{timed, NoProfile, ProfileSink, ReplayOpKind};

use crate::counts::Counts;
use crate::kernels::{self, DiagOp};
use crate::seed::{mix64, stream_seed};
use crate::statevector::StateVector;
use crate::trajectory::{draw_outcome, ChannelOp, TrajectoryOp, TrajectoryProgram};

pub mod batch;
pub mod exact;

pub use batch::ReplayBatch;
pub use exact::{ExactReplayEngine, ExactReplayProgram, ExactScratch};

/// One instruction of a compiled replay tape.
#[derive(Debug, Clone)]
enum ReplayOp {
    /// A fused run of consecutive diagonal gates: one blocked sweep over
    /// `diag[start..start + len]`.
    DiagRun {
        /// First op in the diagonal arena.
        start: usize,
        /// Run length.
        len: usize,
    },
    /// A dense operator application with its matrix resolved at compile
    /// time (dense gates, pulse-backed unitaries, frame drift). The
    /// matrix sits behind an [`Arc`] so template binds — which clone the
    /// tape and substitute only parametric slots — share the
    /// shape-constant matrices instead of deep-copying them.
    Apply {
        /// Targets, `targets[0]` = most-significant operator bit.
        targets: Vec<usize>,
        /// The resolved matrix.
        matrix: Arc<Matrix>,
    },
    /// A precompiled noise channel (index into the channel table).
    Channel(usize),
}

/// How one branch of a mixed-unitary channel is applied.
#[derive(Debug, Clone)]
enum BranchApply {
    /// Exact-identity branch: a no-op (the dominant case for weak
    /// depolarizing noise).
    Identity,
    /// A branch unitary, applied through the dense kernels.
    Apply(Matrix),
}

/// A mixed-unitary channel with its cumulative branch distribution
/// resolved once at compile time.
#[derive(Debug, Clone)]
struct MixedChannel {
    targets: Vec<usize>,
    /// Running sums of the branch probabilities, accumulated in the
    /// exact order [`ChannelOp::apply_sampled`]'s walk accumulates them
    /// — the comparisons (and therefore the picks) are bit-identical.
    cum: Vec<f64>,
    branches: Vec<BranchApply>,
}

/// One row of a single-qubit Kraus operator, classified by which of its
/// entries are exactly zero (the standard channel constructors produce
/// structurally sparse operators: thermal relaxation's set is one
/// diagonal, two single-entry, and one zero operator).
///
/// Sparsity is *safe* for weight sweeps specifically: a skipped
/// `0 * a` term changes the row value only in the sign of zero
/// components, and the row enters the total through `norm_sqr`, which
/// squares them away — the accumulated weights are **bit-identical** to
/// the dense two-`mul_add` chain. (State *application* is not sparsified:
/// there the signed zeros would land in the amplitudes themselves.)
#[derive(Debug, Clone, Copy)]
enum Row1q {
    /// Both entries zero: the row contributes exactly `+0.0` — skipped.
    Zero,
    /// Only the `a0` (bit-clear) entry: `|m * a0|^2`.
    Lo(Complex64),
    /// Only the `a1` (bit-set) entry: `|m * a1|^2`.
    Hi(Complex64),
    /// Dense row: the reference `mul_add` chain.
    Both(Complex64, Complex64),
}

impl Row1q {
    fn classify(lo: Complex64, hi: Complex64) -> Self {
        let z = |c: Complex64| c.re == 0.0 && c.im == 0.0;
        match (z(lo), z(hi)) {
            (true, true) => Row1q::Zero,
            (false, true) => Row1q::Lo(lo),
            (true, false) => Row1q::Hi(hi),
            (false, false) => Row1q::Both(lo, hi),
        }
    }
}

/// The branch-weight sweep of a general channel.
#[derive(Debug, Clone)]
enum WeightScan {
    /// Strided single-qubit kernel: direct pair enumeration with each
    /// Kraus operator's rows pre-classified by sparsity, replacing the
    /// generic scan's per-base index construction. Same pairs in the
    /// same order, bit-identical totals.
    One {
        target: usize,
        /// Per Kraus operator: its two classified rows.
        rows: Vec<(Row1q, Row1q)>,
    },
    /// The generic block scan with masks and block offsets precomputed
    /// (multi-qubit channels; rare).
    Generic {
        all_mask: usize,
        /// Block offsets in `branch_weight`'s MSB-first order.
        offs: Vec<usize>,
    },
}

/// A general (state-dependent-branch) channel in replay form.
#[derive(Debug, Clone)]
struct GeneralChannel {
    targets: Vec<usize>,
    kraus: Vec<Matrix>,
    scan: WeightScan,
    /// Skip branch-0 application + renormalization (`K_0` is a scalar
    /// multiple of the identity; see [`ChannelOp::skips_identity_k0`]).
    k0_identity: bool,
}

/// A precompiled channel of either sampling family.
#[derive(Debug, Clone)]
enum CompiledChannel {
    Mixed(MixedChannel),
    General(GeneralChannel),
}

impl CompiledChannel {
    fn compile(channel: &ChannelOp, targets: &[usize]) -> Self {
        if let Some(mix) = channel.mixed_parts() {
            let mut acc = 0.0;
            let cum = mix
                .probs
                .iter()
                .map(|&p| {
                    acc += p;
                    acc
                })
                .collect();
            let branches = mix
                .unitaries
                .iter()
                .zip(mix.identity.iter())
                .map(|(u, &id)| {
                    if id {
                        BranchApply::Identity
                    } else {
                        BranchApply::Apply(u.clone())
                    }
                })
                .collect();
            return CompiledChannel::Mixed(MixedChannel {
                targets: targets.to_vec(),
                cum,
                branches,
            });
        }
        let kraus = channel.kraus().to_vec();
        let scan = if targets.len() == 1 {
            let rows = kraus
                .iter()
                .map(|k| {
                    (
                        Row1q::classify(k[(0, 0)], k[(0, 1)]),
                        Row1q::classify(k[(1, 0)], k[(1, 1)]),
                    )
                })
                .collect();
            WeightScan::One {
                target: targets[0],
                rows,
            }
        } else {
            // `branch_weight`'s MSB-first block offsets, built once: the
            // offset of block slot `r` sets mask `pos` exactly when bit
            // `k - 1 - pos` of `r` is set.
            let k = targets.len();
            let masks: Vec<usize> = targets.iter().map(|&t| 1usize << t).collect();
            let all_mask: usize = masks.iter().sum();
            let offs = (0..1usize << k)
                .map(|r| {
                    let mut off = 0usize;
                    for (pos, &m) in masks.iter().enumerate() {
                        if (r >> (k - 1 - pos)) & 1 == 1 {
                            off |= m;
                        }
                    }
                    off
                })
                .collect();
            WeightScan::Generic { all_mask, offs }
        };
        CompiledChannel::General(GeneralChannel {
            targets: targets.to_vec(),
            kraus,
            scan,
            k0_identity: channel.skips_identity_k0(),
        })
    }

    fn n_branches(&self) -> usize {
        match self {
            CompiledChannel::Mixed(m) => m.cum.len(),
            CompiledChannel::General(g) => g.kraus.len(),
        }
    }

    /// Draws and applies one branch — the replay mirror of
    /// [`ChannelOp::apply_sampled`], consuming exactly one RNG draw.
    /// The branch draw and Kraus application are charged to the channel
    /// kind, the post-Kraus renormalize to [`ReplayOpKind::Renorm`];
    /// `sink` only observes ([`NoProfile`] compiles it away).
    fn apply_with<R: Rng + ?Sized, P: ProfileSink>(
        &self,
        psi: &mut StateVector,
        weights: &mut Vec<f64>,
        rng: &mut R,
        sink: &P,
    ) {
        match self {
            CompiledChannel::Mixed(mix) => timed(sink, ReplayOpKind::MixedChannel, || {
                let r: f64 = rng.gen();
                let mut pick = mix.cum.len() - 1;
                for (k, &c) in mix.cum.iter().enumerate() {
                    if r < c {
                        pick = k;
                        break;
                    }
                }
                if let BranchApply::Apply(u) = &mix.branches[pick] {
                    psi.apply_operator(u, &mix.targets);
                }
            }),
            CompiledChannel::General(gen) => {
                let applied = timed(sink, ReplayOpKind::GeneralChannel, || {
                    weights.clear();
                    match &gen.scan {
                        WeightScan::One { target, rows } => {
                            branch_weights_1q(psi.amplitudes(), *target, rows, weights);
                        }
                        WeightScan::Generic { all_mask, offs } => {
                            for k in &gen.kraus {
                                weights.push(branch_weight_generic(
                                    psi.amplitudes(),
                                    k,
                                    *all_mask,
                                    offs,
                                ));
                            }
                        }
                    }
                    let total: f64 = weights.iter().sum();
                    assert!(total > 1e-12, "channel annihilated the state");
                    let r: f64 = rng.gen::<f64>() * total;
                    let mut acc = 0.0;
                    let mut pick = weights.len() - 1;
                    for (k, &w) in weights.iter().enumerate() {
                        acc += w;
                        if r < acc {
                            pick = k;
                            break;
                        }
                    }
                    if pick == 0 && gen.k0_identity {
                        return false;
                    }
                    psi.apply_operator(&gen.kraus[pick], &gen.targets);
                    true
                });
                if applied {
                    timed(sink, ReplayOpKind::Renorm, || psi.renormalize());
                }
            }
        }
    }
}

/// `||K_k psi||^2` for every operator of a single-qubit channel,
/// appended to `out` in operator order.
///
/// Bit-identical to per-operator [`StateVector::branch_weight`] calls:
/// each operator's total accumulates over the same pairs in the same
/// (ascending-base) order, every dense row runs the same `mul_add`
/// chain, and sparse rows differ from that chain only in the signs of
/// zero components (erased by `norm_sqr`) or skip exact `+0.0`
/// contributions, which leave a running total's bits untouched.
fn branch_weights_1q(
    amps: &[Complex64],
    target: usize,
    rows: &[(Row1q, Row1q)],
    out: &mut Vec<f64>,
) {
    for &r in rows {
        out.push(branch_weight_1q(amps, target, r));
    }
}

/// One operator's weight sweep, specialized per sparsity pattern so the
/// hot patterns (diagonal, single-entry — the standard damping and
/// relaxation sets) run branch-free tight loops over only the half of
/// the state they read. Pairs are enumerated block-contiguously —
/// bit-clear and bit-set halves of each `2*bit` block — which visits
/// the same bases in the same ascending order as the reference scan.
fn branch_weight_1q(amps: &[Complex64], target: usize, rows: (Row1q, Row1q)) -> f64 {
    let bit = 1usize << target;
    let mut total = 0.0;
    match rows {
        // The zero operator: every contribution is +0.0, as is their sum.
        (Row1q::Zero, Row1q::Zero) => {}
        // Diagonal operator (thermal K0, damping K0).
        (Row1q::Lo(m0), Row1q::Hi(m1)) => {
            for block in amps.chunks_exact(2 * bit) {
                let (lo, hi) = block.split_at(bit);
                for (&a0, &a1) in lo.iter().zip(hi.iter()) {
                    total += (m0 * a0).norm_sqr();
                    total += (m1 * a1).norm_sqr();
                }
            }
        }
        // Only the |0><1| entry (damping K1): reads the bit-set half.
        (Row1q::Hi(m), Row1q::Zero) | (Row1q::Zero, Row1q::Hi(m)) => {
            for block in amps.chunks_exact(2 * bit) {
                for &a1 in &block[bit..] {
                    total += (m * a1).norm_sqr();
                }
            }
        }
        // Only a |.><0| entry: reads the bit-clear half.
        (Row1q::Lo(m), Row1q::Zero) | (Row1q::Zero, Row1q::Lo(m)) => {
            for block in amps.chunks_exact(2 * bit) {
                for &a0 in &block[..bit] {
                    total += (m * a0).norm_sqr();
                }
            }
        }
        // Anything else: the reference two-row `mul_add` chains (sparse
        // rows still skip their zero terms, which norm_sqr erases).
        (r0, r1) => {
            let row = |r: Row1q, a0: Complex64, a1: Complex64| match r {
                Row1q::Zero => 0.0,
                Row1q::Lo(m) => (m * a0).norm_sqr(),
                Row1q::Hi(m) => (m * a1).norm_sqr(),
                // hgp-analysis: allow(d4) -- this fused chain IS the pinned
                // reference arithmetic the parity tests fix.
                Row1q::Both(l, h) => h.mul_add(a1, l.mul_add(a0, Complex64::ZERO)).norm_sqr(),
            };
            for block in amps.chunks_exact(2 * bit) {
                let (lo, hi) = block.split_at(bit);
                for (&a0, &a1) in lo.iter().zip(hi.iter()) {
                    total += row(r0, a0, a1);
                    total += row(r1, a0, a1);
                }
            }
        }
    }
    total
}

/// `||K psi||^2` with precomputed block offsets — the multi-qubit
/// fallback, arithmetic-identical to [`StateVector::branch_weight`].
fn branch_weight_generic(amps: &[Complex64], op: &Matrix, all_mask: usize, offs: &[usize]) -> f64 {
    let mut total = 0.0;
    for base in 0..amps.len() {
        if base & all_mask != 0 {
            continue;
        }
        for r in 0..offs.len() {
            let mut acc = Complex64::ZERO;
            for (c, &off) in offs.iter().enumerate() {
                // hgp-analysis: allow(d4) -- this fused chain IS the pinned
                // reference arithmetic the parity tests fix.
                acc = op[(r, c)].mul_add(amps[base + off], acc);
            }
            total += acc.norm_sqr();
        }
    }
    total
}

/// Where a trajectory op landed in the compiled tape — the handle
/// schedule templates use to substitute parametric entries per dispatch
/// without recompiling the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySlot {
    /// An entry of the fused diagonal arena.
    Diag(usize),
    /// A dense [`ReplayOp::Apply`] entry.
    Op(usize),
    /// A precompiled channel (not substitutable — channel structure is
    /// shape-constant).
    Channel(usize),
}

/// A flat, precompiled trajectory tape. See the module docs.
#[derive(Debug, Clone)]
pub struct ReplayProgram {
    n_qubits: usize,
    ops: Vec<ReplayOp>,
    /// Arena of fused diagonal ops, referenced by [`ReplayOp::DiagRun`].
    diag: Vec<DiagOp>,
    /// Channel tables, shared (never parametric) across template binds.
    channels: Arc<Vec<CompiledChannel>>,
    /// Largest branch count of any channel — sizes the weight scratch.
    max_branches: usize,
}

impl ReplayProgram {
    /// Compiles a recorded trajectory program into a replay tape.
    pub fn compile(program: &TrajectoryProgram) -> Self {
        Self::compile_with_slots(program).0
    }

    /// [`ReplayProgram::compile`] returning, for each trajectory op, the
    /// tape slot it compiled into (in trajectory-op order) — the
    /// substitution map schedule templates are built from.
    pub fn compile_with_slots(program: &TrajectoryProgram) -> (Self, Vec<ReplaySlot>) {
        let mut ops: Vec<ReplayOp> = Vec::new();
        let mut diag: Vec<DiagOp> = Vec::new();
        let mut channels: Vec<CompiledChannel> = Vec::new();
        let mut slots: Vec<ReplaySlot> = Vec::with_capacity(program.ops().len());
        let mut run_open = false;
        for op in program.ops() {
            match op {
                TrajectoryOp::Gate { gate, qubits } => {
                    // Mirror StateVector::apply_gate's dispatch rule:
                    // diagonal gates take the phase-only path, everything
                    // else the dense kernels.
                    if let Some(d) = DiagOp::from_gate(gate, qubits) {
                        slots.push(ReplaySlot::Diag(diag.len()));
                        if run_open {
                            match ops.last_mut() {
                                Some(ReplayOp::DiagRun { len, .. }) => *len += 1,
                                _ => unreachable!("open run is the last op"),
                            }
                        } else {
                            ops.push(ReplayOp::DiagRun {
                                start: diag.len(),
                                len: 1,
                            });
                            run_open = true;
                        }
                        diag.push(d);
                        continue;
                    }
                    run_open = false;
                    slots.push(ReplaySlot::Op(ops.len()));
                    ops.push(ReplayOp::Apply {
                        targets: qubits.clone(),
                        matrix: Arc::new(gate.matrix().expect("trajectory programs are bound")),
                    });
                }
                TrajectoryOp::Unitary { matrix, targets } => {
                    run_open = false;
                    slots.push(ReplaySlot::Op(ops.len()));
                    ops.push(ReplayOp::Apply {
                        targets: targets.clone(),
                        matrix: Arc::new(matrix.clone()),
                    });
                }
                TrajectoryOp::Channel { channel, targets } => {
                    run_open = false;
                    slots.push(ReplaySlot::Channel(channels.len()));
                    ops.push(ReplayOp::Channel(channels.len()));
                    channels.push(CompiledChannel::compile(channel, targets));
                }
            }
        }
        let max_branches = channels.iter().map(CompiledChannel::n_branches).max();
        (
            Self {
                n_qubits: program.n_qubits(),
                ops,
                diag,
                channels: Arc::new(channels),
                max_branches: max_branches.unwrap_or(0),
            },
            slots,
        )
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Tape length (fused diagonal runs count as one op).
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of precompiled channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of fused diagonal entries.
    pub fn n_diag_ops(&self) -> usize {
        self.diag.len()
    }

    /// Overwrites a diagonal slot with a re-bound diagonal op — the
    /// template substitution step for bound-angle `RZ`/`RZZ`/`CZ`
    /// entries. The new op must target the same qubits the recorded op
    /// targeted (templates guarantee this by construction).
    ///
    /// # Panics
    ///
    /// Panics if the slot does not point into the diagonal arena.
    pub fn substitute_diag(&mut self, slot: ReplaySlot, d: DiagOp) {
        match slot {
            ReplaySlot::Diag(i) => self.diag[i] = d,
            other => panic!("slot {other:?} is not a diagonal entry"),
        }
    }

    /// Overwrites a dense slot's matrix — the template substitution step
    /// for re-integrated pulse unitaries and re-bound dense gates.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a dense op or the dimension disagrees
    /// with the recorded targets.
    pub fn substitute_unitary(&mut self, slot: ReplaySlot, m: &Matrix) {
        match slot {
            ReplaySlot::Op(i) => match &mut self.ops[i] {
                ReplayOp::Apply { targets, matrix } => {
                    assert_eq!(m.rows(), 1 << targets.len(), "dimension mismatch");
                    *matrix = Arc::new(m.clone());
                }
                other => panic!("slot points at {other:?}, not a dense op"),
            },
            other => panic!("slot {other:?} is not a dense op"),
        }
    }

    /// Runs one trajectory into the scratch state (resetting it to
    /// `|0...0>` first). The hot loop: no allocation, no dispatch.
    pub fn run_into<R: Rng + ?Sized>(&self, scratch: &mut ReplayScratch, rng: &mut R) {
        self.run_into_profiled(scratch, rng, &NoProfile);
    }

    /// [`ReplayProgram::run_into`] with an opt-in [`ProfileSink`]
    /// attributing each op's wall time to its [`ReplayOpKind`]. With
    /// [`NoProfile`] this monomorphizes to the unprofiled loop exactly
    /// (no clock reads); with any sink the arithmetic and RNG stream
    /// are untouched, so results stay bit-identical.
    pub fn run_into_profiled<R: Rng + ?Sized, P: ProfileSink>(
        &self,
        scratch: &mut ReplayScratch,
        rng: &mut R,
        sink: &P,
    ) {
        assert_eq!(scratch.psi.n_qubits(), self.n_qubits, "scratch width");
        scratch.psi.reset_zero();
        for op in &self.ops {
            match op {
                ReplayOp::DiagRun { start, len } => timed(sink, ReplayOpKind::DiagRun, || {
                    kernels::apply_diag_run_exact(
                        scratch.psi.amps_mut(),
                        &self.diag[*start..*start + *len],
                    )
                }),
                ReplayOp::Apply { targets, matrix } => {
                    let kind = if targets.len() == 1 {
                        ReplayOpKind::Dense1q
                    } else {
                        ReplayOpKind::Dense2q
                    };
                    timed(sink, kind, || scratch.psi.apply_operator(matrix, targets))
                }
                ReplayOp::Channel(c) => {
                    self.channels[*c].apply_with(&mut scratch.psi, &mut scratch.weights, rng, sink)
                }
            }
        }
    }
}

/// Per-worker reusable buffers: the statevector a trajectory evolves in
/// and the branch-weight scratch of general channels. Allocated once per
/// worker, reused across every shot.
#[derive(Debug)]
pub struct ReplayScratch {
    psi: StateVector,
    weights: Vec<f64>,
}

impl ReplayScratch {
    /// Scratch sized for `program`.
    pub fn for_program(program: &ReplayProgram) -> Self {
        Self {
            psi: StateVector::zero_state(program.n_qubits()),
            weights: Vec::with_capacity(program.max_branches),
        }
    }

    /// The state left by the last [`ReplayProgram::run_into`].
    pub fn state(&self) -> &StateVector {
        &self.psi
    }
}

/// Runs trajectory ensembles over a compiled replay tape — the drop-in,
/// bit-identical fast path for [`crate::TrajectoryEngine`]. Same seed
/// stream (`stream_seed(mix64(base), i)`), same reductions; per-worker
/// scratch arenas instead of per-shot allocation, and the diagonal of a
/// diagonal observable is tabulated once per ensemble instead of
/// re-evaluated per shot.
#[derive(Debug, Clone, Copy)]
pub struct ReplayEngine {
    n_trajectories: usize,
    base_seed: u64,
    /// Shot-block override for the batched path; `None` sizes blocks by
    /// state width ([`batch::default_block_size`]).
    block_size: Option<usize>,
}

impl ReplayEngine {
    /// An engine running `n_trajectories` trajectories rooted at
    /// `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_trajectories` is zero.
    pub fn new(n_trajectories: usize, base_seed: u64) -> Self {
        assert!(n_trajectories > 0, "need at least one trajectory");
        Self {
            n_trajectories,
            base_seed,
            block_size: None,
        }
    }

    /// Overrides the batched path's shots-per-block. Every block size
    /// produces bit-identical results (blocks are pure partitions of the
    /// per-trajectory seed stream); the default sizes one block's arena
    /// for cache residency.
    ///
    /// # Panics
    ///
    /// Panics if `shots_per_block` is zero.
    pub fn with_block_size(mut self, shots_per_block: usize) -> Self {
        assert!(shots_per_block > 0, "need at least one shot per block");
        self.block_size = Some(shots_per_block);
        self
    }

    /// The shot-block size the batched entry points will use for
    /// `program`.
    pub fn block_size_for(&self, program: &ReplayProgram) -> usize {
        self.block_size
            .unwrap_or_else(|| batch::default_block_size(program.n_qubits()))
            .min(self.n_trajectories)
    }

    /// Ensemble size.
    pub fn n_trajectories(&self) -> usize {
        self.n_trajectories
    }

    /// The seed stream's base.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The seed of trajectory `index` — bit-compatible with
    /// [`crate::TrajectoryEngine::trajectory_seed`], which is what makes
    /// the two engines interchangeable mid-stream.
    pub fn trajectory_seed(&self, index: usize) -> u64 {
        stream_seed(mix64(self.base_seed), index as u64)
    }

    /// Maps every trajectory index through `f`, returning results in
    /// trajectory order. The ensemble splits into contiguous blocks —
    /// one [`ReplayScratch`] each, allocated once per block — that fan
    /// out over the shared rayon pool (the same pool every other
    /// parallel path in the workspace uses, so nested serving workers
    /// do not oversubscribe the host). Results are a pure function of
    /// `(program, base_seed, index)`, so any partition is bit-identical
    /// to the sequential loop.
    fn map_trajectories<T, F>(&self, program: &ReplayProgram, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut ReplayScratch, usize) -> T + Sync,
    {
        let n = self.n_trajectories;
        let workers = rayon::current_num_threads().min(n).max(1);
        if workers <= 1 {
            let mut scratch = ReplayScratch::for_program(program);
            return (0..n).map(|i| f(&mut scratch, i)).collect();
        }
        let block = n.div_ceil(workers);
        let blocks: Vec<Vec<T>> = (0..n.div_ceil(block))
            .into_par_iter()
            .map(|w| {
                let lo = w * block;
                let hi = ((w + 1) * block).min(n);
                let mut scratch = ReplayScratch::for_program(program);
                (lo..hi).map(|i| f(&mut scratch, i)).collect()
            })
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Per-trajectory expectation values, in trajectory order —
    /// bit-identical to [`crate::TrajectoryEngine::expectations`] on the
    /// source program.
    pub fn expectations(&self, program: &ReplayProgram, observable: &PauliSum) -> Vec<f64> {
        assert_eq!(
            observable.n_qubits(),
            program.n_qubits(),
            "observable width must match the program"
        );
        // A diagonal observable's per-basis values are shot-invariant:
        // tabulate once per ensemble. Each table entry is the very value
        // `eval_diagonal` would return inside the shot loop, and the
        // per-shot sum runs in the same basis order — bit-identical,
        // O(2^n * terms) once instead of per shot.
        let table: Option<Vec<f64>> = observable.is_diagonal().then(|| {
            (0..1usize << program.n_qubits())
                .map(|b| observable.eval_diagonal(b))
                .collect()
        });
        self.map_trajectories(program, |scratch, i| {
            // hgp-analysis: allow(d2) -- `trajectory_seed` is
            // `stream_seed(mix64(base), i)`: pure in (base, i).
            let mut rng = StdRng::seed_from_u64(self.trajectory_seed(i));
            program.run_into(scratch, &mut rng);
            match &table {
                // Same basis order and per-term arithmetic as the
                // reference's `amps[b].norm_sqr() * eval_diagonal(b)`
                // sum; the zip elides the per-index bounds checks.
                Some(diag) => scratch
                    .psi
                    .amplitudes()
                    .iter()
                    .zip(diag.iter())
                    .map(|(a, &d)| a.norm_sqr() * d)
                    .sum(),
                None => scratch.psi.expectation(observable),
            }
        })
    }

    /// Ensemble-mean expectation, bit-identical to
    /// [`crate::TrajectoryEngine::expectation`].
    pub fn expectation(&self, program: &ReplayProgram, observable: &PauliSum) -> f64 {
        let values = self.expectations(program, observable);
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Ensemble mean plus its standard error, bit-identical to
    /// [`crate::TrajectoryEngine::expectation_with_error`].
    pub fn expectation_with_error(
        &self,
        program: &ReplayProgram,
        observable: &PauliSum,
    ) -> (f64, f64) {
        let values = self.expectations(program, observable);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        if values.len() < 2 {
            return (mean, 0.0);
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    /// One computational-basis shot per trajectory, bit-identical to
    /// [`crate::TrajectoryEngine::sample_counts`].
    pub fn sample_counts(&self, program: &ReplayProgram) -> Counts {
        self.sample_counts_with(program, |bits, _| bits)
    }

    /// [`ReplayEngine::sample_counts`] with a post-measurement hook
    /// `corrupt(bits, rng) -> bits` (shot-level readout confusion),
    /// bit-identical to
    /// [`crate::TrajectoryEngine::sample_counts_with`].
    pub fn sample_counts_with<F>(&self, program: &ReplayProgram, corrupt: F) -> Counts
    where
        F: Fn(usize, &mut StdRng) -> usize + Sync,
    {
        let outcomes: Vec<usize> = self.map_trajectories(program, |scratch, i| {
            // hgp-analysis: allow(d2) -- `trajectory_seed` is
            // `stream_seed(mix64(base), i)`: pure in (base, i).
            let mut rng = StdRng::seed_from_u64(self.trajectory_seed(i));
            program.run_into(scratch, &mut rng);
            let bits = draw_outcome(&scratch.psi, &mut rng);
            corrupt(bits, &mut rng)
        });
        let mut counts = Counts::new(program.n_qubits());
        for bits in outcomes {
            counts.record(bits, 1);
        }
        counts
    }

    /// Maps every shot block through `f`, returning per-shot results in
    /// trajectory order. The ensemble splits at fixed multiples of the
    /// block size — boundaries are a pure function of `(n_trajectories,
    /// block size)`, independent of worker count — and the blocks fan
    /// out over the shared rayon pool, one [`ReplayBatch`] arena each.
    /// Per-shot purity (each shot's result depends only on `(program,
    /// base_seed, index)`) makes every such partition bit-identical to
    /// the sequential scalar loop.
    fn map_shot_blocks<T, F>(&self, program: &ReplayProgram, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut ReplayBatch, usize) -> Vec<T> + Sync,
    {
        let n = self.n_trajectories;
        let block = self.block_size_for(program);
        // One arena per worker, reused across that worker's blocks —
        // `ReplayBatch::run` re-seeds and re-zeroes everything a block
        // reads, so reuse only skips the allocation and its page
        // faults. A ragged final block (different shot count, so a
        // different SoA stride) rebuilds once.
        let blocks: Vec<Vec<T>> = (0..n.div_ceil(block))
            .into_par_iter()
            .map_init(
                || None,
                |cache: &mut Option<ReplayBatch>, w| {
                    let lo = w * block;
                    let hi = (lo + block).min(n);
                    let shots = match cache {
                        Some(b) if b.n_shots() == hi - lo => b,
                        _ => cache.insert(ReplayBatch::for_program(program, hi - lo)),
                    };
                    f(shots, lo)
                },
            )
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Per-trajectory expectation values through the batched SoA path —
    /// bit-identical to [`ReplayEngine::expectations`] (and therefore to
    /// the reference [`crate::TrajectoryEngine`]) for every block size.
    pub fn expectations_batched(&self, program: &ReplayProgram, observable: &PauliSum) -> Vec<f64> {
        self.expectations_batched_profiled(program, observable, &NoProfile)
    }

    /// [`ReplayEngine::expectations_batched`] with an opt-in
    /// [`ProfileSink`]. The sink is shared across the worker pool
    /// (relaxed atomic accumulation), so per-op-kind totals cover the
    /// whole ensemble; results stay bit-identical for any sink.
    pub fn expectations_batched_profiled<P: ProfileSink>(
        &self,
        program: &ReplayProgram,
        observable: &PauliSum,
        sink: &P,
    ) -> Vec<f64> {
        assert_eq!(
            observable.n_qubits(),
            program.n_qubits(),
            "observable width must match the program"
        );
        let table: Option<Vec<f64>> = observable.is_diagonal().then(|| {
            (0..1usize << program.n_qubits())
                .map(|b| observable.eval_diagonal(b))
                .collect()
        });
        self.map_shot_blocks(program, |shots, lo| {
            let seeds: Vec<u64> = (0..shots.n_shots())
                .map(|s| self.trajectory_seed(lo + s))
                .collect();
            shots.run_profiled(program, &seeds, sink);
            match &table {
                Some(diag) => shots.diagonal_expectations(diag),
                None => (0..shots.n_shots())
                    .map(|s| shots.shot_expectation(s, observable))
                    .collect(),
            }
        })
    }

    /// Ensemble-mean expectation through the batched path, bit-identical
    /// to [`ReplayEngine::expectation`].
    pub fn expectation_batched(&self, program: &ReplayProgram, observable: &PauliSum) -> f64 {
        let values = self.expectations_batched(program, observable);
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Ensemble mean plus its standard error through the batched path,
    /// bit-identical to [`ReplayEngine::expectation_with_error`].
    pub fn expectation_with_error_batched(
        &self,
        program: &ReplayProgram,
        observable: &PauliSum,
    ) -> (f64, f64) {
        self.expectation_with_error_batched_profiled(program, observable, &NoProfile)
    }

    /// [`ReplayEngine::expectation_with_error_batched`] with an opt-in
    /// [`ProfileSink`] (see
    /// [`ReplayEngine::expectations_batched_profiled`]).
    pub fn expectation_with_error_batched_profiled<P: ProfileSink>(
        &self,
        program: &ReplayProgram,
        observable: &PauliSum,
        sink: &P,
    ) -> (f64, f64) {
        let values = self.expectations_batched_profiled(program, observable, sink);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        if values.len() < 2 {
            return (mean, 0.0);
        }
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        (mean, (var / n).sqrt())
    }

    /// One computational-basis shot per trajectory through the batched
    /// path, bit-identical to [`ReplayEngine::sample_counts`].
    pub fn sample_counts_batched(&self, program: &ReplayProgram) -> Counts {
        self.sample_counts_with_batched(program, |bits, _| bits)
    }

    /// [`ReplayEngine::sample_counts_with`]'s batched counterpart: the
    /// corruption hook sees each shot's RNG exactly where the scalar
    /// engine leaves it (after the outcome draw).
    pub fn sample_counts_with_batched<F>(&self, program: &ReplayProgram, corrupt: F) -> Counts
    where
        F: Fn(usize, &mut StdRng) -> usize + Sync,
    {
        self.sample_counts_with_batched_profiled(program, corrupt, &NoProfile)
    }

    /// [`ReplayEngine::sample_counts_with_batched`] with an opt-in
    /// [`ProfileSink`] (see
    /// [`ReplayEngine::expectations_batched_profiled`]).
    pub fn sample_counts_with_batched_profiled<F, P>(
        &self,
        program: &ReplayProgram,
        corrupt: F,
        sink: &P,
    ) -> Counts
    where
        F: Fn(usize, &mut StdRng) -> usize + Sync,
        P: ProfileSink,
    {
        let outcomes: Vec<usize> = self.map_shot_blocks(program, |shots, lo| {
            let seeds: Vec<u64> = (0..shots.n_shots())
                .map(|s| self.trajectory_seed(lo + s))
                .collect();
            shots.run_profiled(program, &seeds, sink);
            let bits = shots.draw_outcomes();
            bits.into_iter()
                .enumerate()
                .map(|(s, b)| corrupt(b, shots.rng_mut(s)))
                .collect()
        });
        let mut counts = Counts::new(program.n_qubits());
        for bits in outcomes {
            counts.record(bits, 1);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryEngine;
    use hgp_circuit::{Gate, Param};
    use hgp_math::c64;
    use hgp_math::pauli::{sigma_x, sigma_y, sigma_z, Pauli, PauliString, PauliSum};

    fn depolarizing_op(p: f64) -> ChannelOp {
        let kraus = vec![
            Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
            sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
        ];
        let unitaries = vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
        let probs = vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0];
        ChannelOp::mixed_unitary(kraus, probs, unitaries)
    }

    fn amplitude_damping_op(gamma: f64) -> ChannelOp {
        let k0 = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, 0.0)],
            &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
        ]);
        let k1 = Matrix::from_rows(&[
            &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
            &[c64(0.0, 0.0), c64(0.0, 0.0)],
        ]);
        ChannelOp::general(vec![k0, k1])
    }

    fn general_identity_k0_op(p: f64) -> ChannelOp {
        let k0 = Matrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0));
        let k1 = sigma_x().scale(c64(p.sqrt(), 0.0));
        ChannelOp::general(vec![k0, k1])
    }

    /// A program exercising every op family: a diagonal run (fused),
    /// dense gates, a fixed unitary, a mixed channel, and two general
    /// channels (with and without the K0-identity skip).
    fn mixed_program() -> TrajectoryProgram {
        let mut p = TrajectoryProgram::new(3);
        p.push_gate(Gate::H, &[0]);
        p.push_gate(Gate::Rz(Param::bound(0.4)), &[0]);
        p.push_gate(Gate::Rzz(Param::bound(-0.9)), &[0, 1]);
        p.push_gate(Gate::CZ, &[1, 2]);
        p.push_channel(depolarizing_op(0.15), &[1]);
        p.push_gate(Gate::CX, &[0, 2]);
        p.push_unitary(sigma_y(), &[1]);
        p.push_channel(amplitude_damping_op(0.2), &[2]);
        p.push_gate(Gate::Rz(Param::bound(1.3)), &[2]);
        p.push_gate(Gate::Rzz(Param::bound(0.35)), &[2, 0]);
        p.push_channel(general_identity_k0_op(0.1), &[0]);
        p
    }

    fn zz(n: usize, a: usize, b: usize) -> PauliSum {
        PauliSum::from_terms(vec![PauliString::new(
            n,
            vec![(a, Pauli::Z), (b, Pauli::Z)],
            1.0,
        )])
    }

    #[test]
    fn compile_fuses_consecutive_diagonals() {
        let replay = ReplayProgram::compile(&mixed_program());
        // Rz + Rzz + CZ form one run; the trailing Rz + Rzz another.
        assert_eq!(replay.n_diag_ops(), 5);
        assert_eq!(replay.n_channels(), 3);
        // H, run(3), channel, CX, Y, channel, run(2), channel = 8 ops.
        assert_eq!(replay.n_ops(), 8);
    }

    #[test]
    fn replay_expectations_are_bit_identical_to_trajectory_engine() {
        let program = mixed_program();
        let replay = ReplayProgram::compile(&program);
        let obs = zz(3, 0, 2);
        for seed in [0u64, 7, 12345] {
            let reference = TrajectoryEngine::new(96, seed).expectations(&program, &obs);
            let fast = ReplayEngine::new(96, seed).expectations(&replay, &obs);
            assert_eq!(reference.len(), fast.len());
            for (a, b) in reference.iter().zip(fast.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn replay_handles_non_diagonal_observables_identically() {
        let program = mixed_program();
        let replay = ReplayProgram::compile(&program);
        let obs = PauliSum::from_terms(vec![
            PauliString::new(3, vec![(0, Pauli::X), (1, Pauli::Z)], 0.7),
            PauliString::new(3, vec![(2, Pauli::Y)], -0.2),
        ]);
        let reference = TrajectoryEngine::new(48, 5).expectation_with_error(&program, &obs);
        let fast = ReplayEngine::new(48, 5).expectation_with_error(&replay, &obs);
        assert_eq!(reference.0.to_bits(), fast.0.to_bits());
        assert_eq!(reference.1.to_bits(), fast.1.to_bits());
    }

    #[test]
    fn replay_counts_are_bit_identical_with_corruption_hook() {
        let program = mixed_program();
        let replay = ReplayProgram::compile(&program);
        let corrupt = |bits: usize, rng: &mut StdRng| {
            if rng.gen::<f64>() < 0.07 {
                bits ^ 0b101
            } else {
                bits
            }
        };
        let reference = TrajectoryEngine::new(256, 11).sample_counts_with(&program, corrupt);
        let fast = ReplayEngine::new(256, 11).sample_counts_with(&replay, corrupt);
        assert_eq!(reference, fast);
        assert_eq!(
            TrajectoryEngine::new(128, 3).sample_counts(&program),
            ReplayEngine::new(128, 3).sample_counts(&replay)
        );
    }

    #[test]
    fn seed_streams_are_bit_compatible() {
        let a = TrajectoryEngine::new(32, 99);
        let b = ReplayEngine::new(32, 99);
        for i in 0..32 {
            assert_eq!(a.trajectory_seed(i), b.trajectory_seed(i));
        }
    }

    #[test]
    fn substitution_matches_a_fresh_compile() {
        // Re-binding a diagonal slot and a dense slot must land exactly
        // where compiling the re-bound recording would.
        let build = |theta: f64, phi: f64| {
            let mut p = TrajectoryProgram::new(2);
            p.push_gate(Gate::H, &[0]);
            p.push_gate(Gate::Rzz(Param::bound(theta)), &[0, 1]);
            p.push_unitary(Gate::Rx(Param::bound(phi)).matrix().unwrap(), &[1]);
            p.push_channel(depolarizing_op(0.1), &[0]);
            p
        };
        let (mut replay, slots) = ReplayProgram::compile_with_slots(&build(0.3, 0.5));
        assert_eq!(slots.len(), 4);
        let rebound = Gate::Rzz(Param::bound(-1.1));
        replay.substitute_diag(slots[1], DiagOp::from_gate(&rebound, &[0, 1]).unwrap());
        replay.substitute_unitary(slots[2], &Gate::Rx(Param::bound(0.9)).matrix().unwrap());
        let fresh = ReplayProgram::compile(&build(-1.1, 0.9));
        let obs = zz(2, 0, 1);
        let a = ReplayEngine::new(64, 4).expectations(&replay, &obs);
        let b = ReplayEngine::new(64, 4).expectations(&fresh, &obs);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn batched_replay_is_bit_identical_across_block_sizes() {
        let program = mixed_program();
        let replay = ReplayProgram::compile(&program);
        let obs = zz(3, 0, 2);
        let engine = ReplayEngine::new(97, 13);
        let scalar = engine.expectations(&replay, &obs);
        // Sizes that divide the ensemble, sizes that don't, a single-shot
        // block, one block for everything, and the width-derived default.
        for block in [1usize, 2, 3, 16, 64, 97, 200] {
            let batched = engine
                .with_block_size(block)
                .expectations_batched(&replay, &obs);
            assert_eq!(scalar.len(), batched.len());
            for (a, b) in scalar.iter().zip(batched.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "block size {block}");
            }
        }
        let batched = engine.expectations_batched(&replay, &obs);
        for (a, b) in scalar.iter().zip(batched.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batched_counts_and_errors_match_scalar_bitwise() {
        let program = mixed_program();
        let replay = ReplayProgram::compile(&program);
        let corrupt = |bits: usize, rng: &mut StdRng| {
            if rng.gen::<f64>() < 0.1 {
                bits ^ 0b011
            } else {
                bits
            }
        };
        let scalar = ReplayEngine::new(193, 21).sample_counts_with(&replay, corrupt);
        for block in [1usize, 5, 32, 193] {
            let batched = ReplayEngine::new(193, 21)
                .with_block_size(block)
                .sample_counts_with_batched(&replay, corrupt);
            assert_eq!(scalar, batched, "block size {block}");
        }
        assert_eq!(
            ReplayEngine::new(64, 3).sample_counts(&replay),
            ReplayEngine::new(64, 3).sample_counts_batched(&replay)
        );
        let obs = PauliSum::from_terms(vec![
            PauliString::new(3, vec![(0, Pauli::X), (2, Pauli::Z)], 0.5),
            PauliString::new(3, vec![(1, Pauli::Y)], 1.5),
        ]);
        let a = ReplayEngine::new(33, 2).expectation_with_error(&replay, &obs);
        let b = ReplayEngine::new(33, 2)
            .with_block_size(4)
            .expectation_with_error_batched(&replay, &obs);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    #[test]
    #[should_panic(expected = "not a dense op")]
    fn diag_slot_rejects_unitary_substitution() {
        let mut p = TrajectoryProgram::new(1);
        p.push_gate(Gate::Rz(Param::bound(0.1)), &[0]);
        let (mut replay, slots) = ReplayProgram::compile_with_slots(&p);
        replay.substitute_unitary(slots[0], &Matrix::identity(2));
    }
}
