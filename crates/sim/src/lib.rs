#![deny(unsafe_op_in_unsafe_fn)]

//! Statevector and density-matrix quantum simulators behind the unified
//! [`SimBackend`] execution engine.
//!
//! Two execution backends power the workspace:
//!
//! - [`StateVector`]: pure-state simulation for ideal (noiseless) circuit
//!   evaluation and for unit-testing compiled pulse propagators,
//! - [`DensityMatrix`]: mixed-state simulation used by the machine-in-loop
//!   training runs, where Kraus noise channels act after every instruction.
//!
//! Both implement [`SimBackend`] — the trait every execution consumer
//! (the executor, the noisy simulator, training, benches) routes through
//! — and both dispatch gates into the fused kernel layer ([`kernels`]):
//! diagonal fast paths for `RZ`/`RZZ`/`CZ` (QAOA's entire cost layer),
//! stride-based dense 1q/2q kernels, and rayon-parallel amplitude
//! chunking above [`kernels::PAR_QUBIT_THRESHOLD`] qubits.
//!
//! A third execution mode lives in [`trajectory`]: noisy simulation as
//! an ensemble of stochastic *pure-state* trajectories
//! ([`TrajectoryEngine`] over a [`TrajectoryProgram`]), `O(2^n)` per
//! instruction per trajectory instead of the density matrix's `O(4^n)`,
//! with deterministic per-trajectory seeds ([`seed::stream_seed`]).
//! Its production hot path is [`replay`]: recorded trajectory programs
//! compile once into a flat [`ReplayProgram`] tape (fused diagonal runs,
//! resolved matrices, precompiled channel sampling tables) that
//! [`ReplayEngine`] replays with zero per-shot allocation or dispatch —
//! pinned **bit-identical** to the trajectory engine, which stays as the
//! reference implementation. Ensembles run through the batched-shot mode
//! by default ([`ReplayBatch`]: cache-sized SoA shot blocks swept
//! op-major, bit-identical to the scalar loop for every block size).
//! The exact density path has the analogous layer ([`replay::exact`]):
//! recorded programs compile into an [`ExactReplayProgram`]
//! superoperator tape — fused diagonal-run sweeps, resolved dense
//! conjugations, channels collapsed into superoperators or blockwise
//! Kraus passes — replayed by [`ExactReplayEngine`] with the
//! `apply_exact` walk kept as the pinned reference.
//!
//! Measurement statistics come out as [`Counts`] — multisets of observed
//! bitstrings — which downstream crates feed to error mitigation and cost
//! aggregation.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//! use hgp_sim::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let psi = StateVector::from_circuit(&bell).expect("bound circuit");
//! let probs = psi.probabilities();
//! assert!((probs[0b00] - 0.5).abs() < 1e-12);
//! assert!((probs[0b11] - 0.5).abs() < 1e-12);
//! ```

pub mod backend;
pub mod counts;
pub mod density;
pub mod kernels;
pub mod replay;
pub mod seed;
pub mod statevector;
pub mod trajectory;

pub use backend::SimBackend;
pub use counts::Counts;
pub use density::DensityMatrix;
// Profiling sinks for the replay engines (see `hgp_obs::profile`):
// re-exported so engine callers name one crate for tape + sink.
pub use hgp_obs::profile::{NoProfile, OpProfile, OpProfileSnapshot, ProfileSink, ReplayOpKind};
pub use replay::{
    ExactReplayEngine, ExactReplayProgram, ExactScratch, ReplayBatch, ReplayEngine, ReplayProgram,
    ReplayScratch, ReplaySlot,
};
pub use statevector::StateVector;
pub use trajectory::{ChannelOp, TrajectoryEngine, TrajectoryOp, TrajectoryProgram};
