//! The unified execution engine: [`SimBackend`].
//!
//! Every consumer of simulation in the workspace — the machine-in-loop
//! executor, the noisy simulator, the training loop, the benches — runs
//! circuits through this trait instead of touching a concrete
//! simulator's amplitude loops. The two implementations are
//!
//! - [`crate::StateVector`]: pure states, `O(2^n)` per gate, up to 26
//!   qubits — the ideal/fast path,
//! - [`crate::DensityMatrix`]: mixed states, `O(4^n)` per gate, up to 13
//!   qubits — the noisy path (supports Kraus channels).
//!
//! Gate application goes through [`SimBackend::apply_gate`], which
//! dispatches to the fused kernels in [`crate::kernels`] (diagonal fast
//! paths for `RZ`/`RZZ`/`CZ`, strided dense 1q/2q kernels, rayon
//! chunking on wide registers) — call sites get the fast paths for free.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//! use hgp_sim::{SimBackend, StateVector, DensityMatrix};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let psi = StateVector::execute(&bell).expect("bound");
//! let rho = DensityMatrix::execute(&bell).expect("bound");
//! let (p, q) = (psi.probabilities(), rho.probabilities());
//! assert!((p[0] - q[0]).abs() < 1e-12 && (p[0] - 0.5).abs() < 1e-12);
//! ```

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_math::pauli::PauliSum;
use hgp_math::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::counts::Counts;

/// A simulation engine that executes circuits and exposes measurement
/// statistics. See the module docs.
pub trait SimBackend: Send + Sized {
    /// Short backend identifier (for logs and bench labels).
    const NAME: &'static str;

    /// Whether the backend can apply general Kraus channels (mixed-state
    /// evolution). Noise-model code must check this before calling
    /// [`SimBackend::apply_kraus`] with a non-unitary channel.
    const SUPPORTS_CHANNELS: bool;

    /// The initial state `|0...0>` over `n_qubits`.
    fn init(n_qubits: usize) -> Self;

    /// Register width.
    fn n_qubits(&self) -> usize;

    /// Applies one gate, using the fused kernel fast paths where the
    /// gate's structure allows. Returns `None` if the gate has unbound
    /// parameters (state may be partially evolved; callers bind first).
    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()>;

    /// Applies an arbitrary `2^k x 2^k` unitary to the listed targets
    /// (`targets[0]` = most-significant operator bit).
    fn apply_unitary(&mut self, op: &Matrix, targets: &[usize]);

    /// Applies a quantum channel given by Kraus operators.
    ///
    /// # Panics
    ///
    /// Backends with [`SimBackend::SUPPORTS_CHANNELS`] `== false` panic
    /// unless the channel is a single (unitary) Kraus operator.
    fn apply_kraus(&mut self, kraus: &[Matrix], targets: &[usize]);

    /// Measurement probabilities over the computational basis.
    fn probabilities(&self) -> Vec<f64>;

    /// Expectation value of a Hermitian observable given as a Pauli sum.
    fn expectation(&self, observable: &PauliSum) -> f64;

    /// Applies a bound circuit's gates in order (measurements and
    /// barriers are ignored). Returns `None` on the first unbound gate.
    fn run_circuit(&mut self, circuit: &Circuit) -> Option<()> {
        assert_eq!(circuit.n_qubits(), self.n_qubits(), "width mismatch");
        for inst in circuit.instructions() {
            if let Instruction::Gate { gate, qubits } = inst {
                self.apply_gate(gate, qubits)?;
            }
        }
        Some(())
    }

    /// Executes a bound circuit from `|0...0>`.
    fn execute(circuit: &Circuit) -> Option<Self> {
        let mut state = Self::init(circuit.n_qubits());
        state.run_circuit(circuit)?;
        Some(state)
    }

    /// Samples `shots` computational-basis outcomes with a deterministic
    /// seed (renormalizing the distribution against round-off).
    fn sample_with_seed(&self, shots: usize, seed: u64) -> Counts {
        let mut probs = self.probabilities();
        let sum: f64 = probs.iter().sum();
        if sum > 0.0 {
            for p in &mut probs {
                *p /= sum;
            }
        }
        // hgp-analysis: allow(d2) -- `seed` is the trait method's caller-supplied
        // leaf seed; provenance (`stream_seed`) is the caller's obligation.
        let mut rng = StdRng::seed_from_u64(seed);
        Counts::sample_from_probabilities(&probs, shots, self.n_qubits(), &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DensityMatrix, StateVector};
    use hgp_circuit::Param;

    fn qaoa_layer(n: usize) -> Circuit {
        let mut qc = Circuit::new(n);
        for q in 0..n {
            qc.h(q);
        }
        for q in 0..n {
            qc.rzz(q, (q + 1) % n, 0.4);
        }
        for q in 0..n {
            qc.rx(q, 0.8);
        }
        qc
    }

    fn backend_agrees<B: SimBackend>(circuit: &Circuit, reference: &[f64]) {
        let state = B::execute(circuit).expect("bound");
        let probs = state.probabilities();
        for (i, (p, r)) in probs.iter().zip(reference.iter()).enumerate() {
            assert!((p - r).abs() < 1e-12, "{}: p[{i}] = {p} vs {r}", B::NAME);
        }
    }

    #[test]
    fn backends_agree_on_qaoa_layer() {
        let qc = qaoa_layer(5);
        let psi = StateVector::from_circuit(&qc).expect("bound");
        let reference = psi.probabilities();
        backend_agrees::<StateVector>(&qc, &reference);
        backend_agrees::<DensityMatrix>(&qc, &reference);
    }

    #[test]
    fn unbound_circuit_reports_none() {
        let mut qc = Circuit::new(2);
        let p = qc.add_param();
        qc.h(0).rzz_param(0, 1, p, 1.0);
        assert!(StateVector::execute(&qc).is_none());
        assert!(DensityMatrix::execute(&qc).is_none());
    }

    #[test]
    fn trait_sampling_is_deterministic() {
        let qc = qaoa_layer(4);
        let psi = StateVector::execute(&qc).expect("bound");
        let a = psi.sample_with_seed(2048, 11);
        let b = psi.sample_with_seed(2048, 11);
        let c = psi.sample_with_seed(2048, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn expectation_through_the_trait() {
        use hgp_math::pauli::{Pauli, PauliString};
        let mut qc = Circuit::new(1);
        qc.push(Gate::Rx(Param::bound(1.1)), &[0]);
        let z = PauliSum::from_terms(vec![PauliString::new(1, vec![(0, Pauli::Z)], 1.0)]);
        let by_sv = StateVector::execute(&qc).unwrap().expectation(&z);
        let by_dm = SimBackend::expectation(&DensityMatrix::execute(&qc).unwrap(), &z);
        assert!((by_sv - 1.1f64.cos()).abs() < 1e-12);
        assert!((by_dm - by_sv).abs() < 1e-12);
    }
}
