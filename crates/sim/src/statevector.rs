//! Pure-state simulation.

use rand::Rng;

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_math::pauli::PauliSum;
use hgp_math::{Complex64, Matrix};

use crate::backend::SimBackend;
use crate::counts::Counts;
use crate::kernels;

/// A pure quantum state over `n` qubits.
///
/// Amplitude `amps[b]` belongs to computational-basis state `|b>` with
/// qubit 0 as the least-significant bit.
///
/// ```
/// use hgp_sim::StateVector;
/// let psi = StateVector::zero_state(3);
/// assert_eq!(psi.n_qubits(), 3);
/// assert!((psi.probability(0) - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0...0>`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits > 0 && n_qubits <= 26, "supported width: 1..=26");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        Self { n_qubits, amps }
    }

    /// The uniform superposition `|+>^n` (QAOA's initial state).
    pub fn plus_state(n_qubits: usize) -> Self {
        assert!(n_qubits > 0 && n_qubits <= 26, "supported width: 1..=26");
        let dim = 1usize << n_qubits;
        let a = Complex64::from_re(1.0 / (dim as f64).sqrt());
        Self {
            n_qubits,
            amps: vec![a; dim],
        }
    }

    /// Builds a state from raw amplitudes (must have length `2^n` and unit
    /// norm within `1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is off.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let dim = amps.len();
        assert!(dim.is_power_of_two() && dim >= 2, "length must be 2^n");
        let n_qubits = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-8,
            "amplitudes must be normalized (norm^2 = {norm})"
        );
        Self { n_qubits, amps }
    }

    /// Runs a bound circuit from `|0...0>`.
    ///
    /// Returns `None` if the circuit has unbound parameters. Measurements
    /// and barriers are ignored (use [`StateVector::sample`] afterwards).
    pub fn from_circuit(circuit: &Circuit) -> Option<Self> {
        let mut psi = Self::zero_state(circuit.n_qubits());
        psi.apply_circuit(circuit)?;
        Some(psi)
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitude vector.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Raw amplitude access for the replay engine, which drives the
    /// kernels directly over a reused scratch state.
    #[inline]
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Resets the state to `|0...0>` in place (the replay engine's
    /// per-trajectory reset — same values as [`StateVector::zero_state`],
    /// no allocation).
    pub(crate) fn reset_zero(&mut self) {
        for a in &mut self.amps {
            *a = Complex64::ZERO;
        }
        self.amps[0] = Complex64::ONE;
    }

    /// Applies a bound circuit's gates in order, fusing maximal runs of
    /// consecutive diagonal gates (a QAOA cost layer is one such run)
    /// into single sweeps over the amplitudes.
    ///
    /// Returns `None` (leaving the state partially evolved) if an unbound
    /// gate is hit; callers bind first.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Option<()> {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        let mut run: Vec<kernels::DiagOp> = Vec::new();
        for inst in circuit.instructions() {
            if let Instruction::Gate { gate, qubits } = inst {
                if let Some(op) = kernels::DiagOp::from_gate(gate, qubits) {
                    for &q in qubits {
                        assert!(q < self.n_qubits, "target out of range");
                    }
                    if qubits.len() == 2 {
                        assert_ne!(qubits[0], qubits[1], "targets must differ");
                    }
                    run.push(op);
                    continue;
                }
                kernels::apply_diag_fused(&mut self.amps, &run);
                run.clear();
                self.apply_gate(gate, qubits)?;
            }
        }
        kernels::apply_diag_fused(&mut self.amps, &run);
        Some(())
    }

    /// Applies one gate through the fused kernel layer: diagonal gates
    /// (`RZ`, `Z`, `S`, `T`, `CZ`, `RZZ`, ...) take the phase-only fast
    /// path, everything else the strided dense kernels.
    ///
    /// Returns `None` if the gate has unbound parameters.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        for &q in qubits {
            assert!(q < self.n_qubits, "target out of range");
        }
        match qubits.len() {
            1 => {
                if let Some(d) = kernels::diagonal_1q(gate) {
                    kernels::apply_diag_1q(&mut self.amps, qubits[0], d);
                } else {
                    let m = gate.matrix()?;
                    kernels::apply_dense_1q(&mut self.amps, qubits[0], &m);
                }
            }
            2 => {
                assert_ne!(qubits[0], qubits[1], "targets must differ");
                if let Some(d) = kernels::diagonal_2q(gate) {
                    kernels::apply_diag_2q(&mut self.amps, qubits[0], qubits[1], d);
                } else {
                    let m = gate.matrix()?;
                    kernels::apply_dense_2q(&mut self.amps, qubits[0], qubits[1], &m);
                }
            }
            _ => {
                let m = gate.matrix()?;
                self.apply_operator(&m, qubits);
            }
        }
        Some(())
    }

    /// Applies a `2^k x 2^k` operator to the listed target qubits.
    ///
    /// `targets[0]` is the most-significant bit of the operator's index,
    /// matching [`hgp_math::Matrix::embed`]. 1- and 2-qubit operators use
    /// the strided kernels; larger operators fall back to the embedded
    /// matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range/duplicate targets.
    pub fn apply_operator(&mut self, op: &Matrix, targets: &[usize]) {
        for &t in targets {
            assert!(t < self.n_qubits, "target out of range");
        }
        match targets.len() {
            1 => {
                assert_eq!(op.rows(), 2, "expected a 2x2 operator");
                kernels::apply_dense_1q(&mut self.amps, targets[0], op);
            }
            2 => {
                assert_eq!(op.rows(), 4, "expected a 4x4 operator");
                assert_ne!(targets[0], targets[1], "targets must differ");
                kernels::apply_dense_2q(&mut self.amps, targets[0], targets[1], op);
            }
            _ => {
                let full = op.embed(self.n_qubits, targets);
                self.amps = full.matvec(&self.amps);
            }
        }
    }

    fn apply_1q(&mut self, op: &Matrix, target: usize) {
        assert_eq!(op.rows(), 2, "expected a 2x2 operator");
        assert!(target < self.n_qubits, "target out of range");
        kernels::apply_dense_1q(&mut self.amps, target, op);
    }

    /// The squared norm `||K psi||^2` the state would have after applying
    /// the (not necessarily unitary) operator `op` to `targets`, without
    /// modifying the state.
    ///
    /// This is the branch weight the quantum-trajectory sampler uses to
    /// pick a Kraus branch: for a CPTP channel `{K_k}` the weights
    /// `||K_k psi||^2` sum to 1 on a normalized state.
    ///
    /// `targets[0]` is the most-significant bit of the operator's index,
    /// matching [`StateVector::apply_operator`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range/duplicate targets.
    pub fn branch_weight(&self, op: &Matrix, targets: &[usize]) -> f64 {
        let k = targets.len();
        assert_eq!(op.rows(), 1 << k, "operator dimension mismatch");
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < self.n_qubits, "target out of range");
            assert!(!targets[..i].contains(&t), "targets must differ");
        }
        let masks: Vec<usize> = targets.iter().map(|&t| 1usize << t).collect();
        let all_mask: usize = masks.iter().sum();
        let block = 1usize << k;
        let mut idx = vec![0usize; block];
        let mut total = 0.0;
        for base in 0..self.amps.len() {
            if base & all_mask != 0 {
                continue;
            }
            // Block indices: bits of `r` map MSB-first onto targets.
            for (r, slot) in idx.iter_mut().enumerate() {
                let mut i = base;
                for (pos, &m) in masks.iter().enumerate() {
                    if (r >> (k - 1 - pos)) & 1 == 1 {
                        i |= m;
                    }
                }
                *slot = i;
            }
            for r in 0..block {
                let mut acc = Complex64::ZERO;
                for (c, &ci) in idx.iter().enumerate() {
                    // hgp-analysis: allow(d4) -- this fused chain IS the pinned
                    // reference arithmetic the parity tests fix.
                    acc = op[(r, c)].mul_add(self.amps[ci], acc);
                }
                total += acc.norm_sqr();
            }
        }
        total
    }

    /// Rescales the amplitudes to unit norm (used after applying a
    /// non-unitary Kraus branch).
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) the zero vector.
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot renormalize a zero state");
        let inv = 1.0 / norm;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Probability of observing basis state `b`.
    #[inline]
    pub fn probability(&self, b: usize) -> f64 {
        self.amps[b].norm_sqr()
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should be 1 up to round-off).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Expectation value of a Hermitian observable given as a Pauli sum.
    ///
    /// Diagonal (Z-only) sums take a fast path over probabilities; general
    /// sums apply each term to a scratch copy.
    pub fn expectation(&self, observable: &PauliSum) -> f64 {
        assert_eq!(observable.n_qubits(), self.n_qubits, "width mismatch");
        if observable.is_diagonal() {
            return self
                .amps
                .iter()
                .enumerate()
                .map(|(b, a)| a.norm_sqr() * observable.eval_diagonal(b))
                .sum();
        }
        let mut total = 0.0;
        for term in observable.terms() {
            let mut phi = self.clone();
            for &(q, p) in term.factors() {
                phi.apply_1q(&p.matrix(), q);
            }
            total += term.coeff() * self.inner(&phi).re;
        }
        total
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Counts {
        Counts::sample_from_probabilities(&self.probabilities(), shots, self.n_qubits, rng)
    }
}

impl SimBackend for StateVector {
    const NAME: &'static str = "statevector";
    const SUPPORTS_CHANNELS: bool = false;

    fn init(n_qubits: usize) -> Self {
        Self::zero_state(n_qubits)
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        StateVector::apply_gate(self, gate, qubits)
    }

    fn apply_unitary(&mut self, op: &Matrix, targets: &[usize]) {
        self.apply_operator(op, targets);
    }

    /// Pure states evolve only unitarily: a single Kraus operator is
    /// applied as a unitary; genuine (multi-operator) channels panic.
    fn apply_kraus(&mut self, kraus: &[Matrix], targets: &[usize]) {
        assert_eq!(
            kraus.len(),
            1,
            "statevector backend cannot apply non-unitary channels \
             (use DensityMatrix, or check SimBackend::SUPPORTS_CHANNELS)"
        );
        self.apply_operator(&kraus[0], targets);
    }

    fn probabilities(&self) -> Vec<f64> {
        StateVector::probabilities(self)
    }

    fn expectation(&self, observable: &PauliSum) -> f64 {
        StateVector::expectation(self, observable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Circuit;
    use hgp_math::c64;
    use hgp_math::pauli::{Pauli, PauliString};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn zero_state_is_deterministic() {
        let psi = StateVector::zero_state(2);
        assert_eq!(psi.probability(0), 1.0);
        assert_eq!(psi.probability(3), 0.0);
    }

    #[test]
    fn plus_state_is_uniform() {
        let psi = StateVector::plus_state(3);
        for b in 0..8 {
            assert!((psi.probability(b) - 0.125).abs() < 1e-14);
        }
    }

    #[test]
    fn x_flips_qubit() {
        let mut qc = Circuit::new(2);
        qc.x(1);
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((psi.probability(0b10) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((psi.probability(0b00) - 0.5).abs() < 1e-14);
        assert!((psi.probability(0b11) - 0.5).abs() < 1e-14);
        assert!(psi.probability(0b01) < 1e-14);
    }

    #[test]
    fn ghz_state_on_five_qubits() {
        let n = 5;
        let mut qc = Circuit::new(n);
        qc.h(0);
        for q in 1..n {
            qc.cx(q - 1, q);
        }
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((psi.probability(0) - 0.5).abs() < 1e-12);
        assert!((psi.probability((1 << n) - 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kernels_match_embedded_matrices() {
        // Random-ish circuit checked against full-unitary evolution.
        let mut qc = Circuit::new(3);
        qc.h(0)
            .rx(1, 0.7)
            .cx(0, 2)
            .rzz(1, 2, -0.9)
            .ry(2, 1.9)
            .cx(2, 1)
            .rz(0, 0.3);
        let psi = StateVector::from_circuit(&qc).unwrap();
        let u = qc.unitary().unwrap();
        let mut expect = [Complex64::ZERO; 8];
        for r in 0..8 {
            expect[r] = u[(r, 0)];
        }
        for (a, b) in psi.amplitudes().iter().zip(expect.iter()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn norm_is_preserved() {
        let mut qc = Circuit::new(4);
        for q in 0..4 {
            qc.h(q).rx(q, 0.3 * (q as f64 + 1.0));
        }
        qc.cx(0, 1).cx(1, 2).cx(2, 3).rzz(0, 3, 1.1);
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_z_after_rx() {
        // <Z> after RX(theta) on |0> is cos(theta).
        let theta = 1.1;
        let mut qc = Circuit::new(1);
        qc.rx(0, theta);
        let psi = StateVector::from_circuit(&qc).unwrap();
        let z = PauliSum::from_terms(vec![PauliString::new(1, vec![(0, Pauli::Z)], 1.0)]);
        assert!((psi.expectation(&z) - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_x_on_plus_state() {
        let psi = StateVector::plus_state(1);
        let x = PauliSum::from_terms(vec![PauliString::new(1, vec![(0, Pauli::X)], 1.0)]);
        assert!((psi.expectation(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_bounds() {
        let a = StateVector::zero_state(2);
        let b = StateVector::plus_state(2);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-14);
        assert!((a.fidelity(&b) - 0.25).abs() < 1e-14);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut qc = Circuit::new(1);
        qc.rx(0, PI / 3.0); // P(1) = sin^2(pi/6) = 0.25
        let psi = StateVector::from_circuit(&qc).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let counts = psi.sample(20_000, &mut rng);
        let p1 = counts.frequency(1);
        assert!((p1 - 0.25).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn three_qubit_operator_falls_back_to_embed() {
        // Toffoli-like: use a 3-qubit operator built by embedding CX (x) I.
        let cx = hgp_circuit::Gate::CX.matrix().unwrap();
        let op = cx.kron(&Matrix::identity(2));
        let mut psi = StateVector::zero_state(3);
        psi.apply_1q(&hgp_circuit::Gate::X.matrix().unwrap(), 2);
        // op acts on [2,1,0]: control = qubit 2, so target flips.
        psi.apply_operator(&op, &[2, 1, 0]);
        assert!((psi.probability(0b110) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_validates_norm() {
        let amps = vec![c64(1.0, 0.0), c64(0.0, 0.0)];
        let psi = StateVector::from_amplitudes(amps);
        assert_eq!(psi.n_qubits(), 1);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn unnormalized_amplitudes_panic() {
        let _ = StateVector::from_amplitudes(vec![c64(1.0, 0.0), c64(1.0, 0.0)]);
    }
}
