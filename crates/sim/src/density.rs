//! Mixed-state simulation.
//!
//! The machine-in-loop training runs of the hybrid gate-pulse model evolve
//! a density matrix so that Kraus noise channels (amplitude damping,
//! dephasing, depolarizing) can act after every instruction. Operators are
//! applied with `O(4^n)`-per-gate kernels: a unitary `U` on targets `t`
//! maps `rho -> U rho U†`, implemented as a column pass (left
//! multiplication) followed by a row pass (right multiplication by `U†`).

use rand::Rng;

use hgp_circuit::{Circuit, Gate, Instruction};
use hgp_math::pauli::PauliSum;
use hgp_math::{Complex64, Matrix};

use crate::backend::SimBackend;
use crate::counts::Counts;
use crate::kernels;
use crate::statevector::StateVector;

/// A density matrix over `n` qubits, stored dense row-major.
///
/// ```
/// use hgp_sim::DensityMatrix;
/// let rho = DensityMatrix::zero_state(2);
/// assert!((rho.trace() - 1.0).abs() < 1e-15);
/// assert!((rho.purity() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(n_qubits > 0 && n_qubits <= 13, "supported width: 1..=13");
        let dim = 1usize << n_qubits;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        Self {
            n_qubits,
            dim,
            data,
        }
    }

    /// The pure uniform-superposition state `|+><+|^n`.
    pub fn plus_state(n_qubits: usize) -> Self {
        Self::from_statevector(&StateVector::plus_state(n_qubits))
    }

    /// Builds `|psi><psi|` from a pure state.
    pub fn from_statevector(psi: &StateVector) -> Self {
        let n_qubits = psi.n_qubits();
        let dim = 1usize << n_qubits;
        let amps = psi.amplitudes();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        Self {
            n_qubits,
            dim,
            data,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let mut rho = Self::zero_state(n_qubits);
        rho.data[0] = Complex64::ZERO;
        let p = Complex64::from_re(1.0 / dim as f64);
        for i in 0..dim {
            rho.data[i * dim + i] = p;
        }
        rho
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.dim + j]
    }

    /// Mutable raw row-major entries — the exact replay tape's kernels
    /// ([`crate::replay::exact`]) sweep the storage directly.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Resets to `|0...0><0...0|` without reallocating.
    pub(crate) fn reset_zero(&mut self) {
        self.data.fill(Complex64::ZERO);
        self.data[0] = Complex64::ONE;
    }

    /// Converts to a dense [`Matrix`] (for tests and small-system checks).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.dim, self.dim, self.data.clone())
    }

    /// Trace (real part; the imaginary part is round-off).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.data[i * self.dim + i].re).sum()
    }

    /// Purity `Tr(rho^2)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 (Hermitian).
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Applies a unitary `op` (dimension `2^k`) to target qubits:
    /// `rho -> U rho U†`.
    ///
    /// `targets[0]` is the most-significant bit of the operator's index.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or bad targets.
    pub fn apply_unitary(&mut self, op: &Matrix, targets: &[usize]) {
        self.apply_left(op, targets);
        self.apply_right_dagger(op, targets);
    }

    /// Applies a bound circuit's gates in order (no noise).
    ///
    /// Returns `None` if an unbound gate is hit.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Option<()> {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        for inst in circuit.instructions() {
            if let Instruction::Gate { gate, qubits } = inst {
                self.apply_gate(gate, qubits)?;
            }
        }
        Some(())
    }

    /// Applies one gate, taking the diagonal fast path where the gate's
    /// structure allows (`rho -> D rho D†` is an elementwise scale — no
    /// block gathering).
    ///
    /// Returns `None` if the gate has unbound parameters.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        let diag: Option<Vec<Complex64>> = match qubits.len() {
            1 => kernels::diagonal_1q(gate).map(|d| d.to_vec()),
            2 => kernels::diagonal_2q(gate).map(|d| d.to_vec()),
            _ => None,
        };
        if let Some(d) = diag {
            self.apply_diagonal_unitary(qubits, &d);
            return Some(());
        }
        let m = gate.matrix()?;
        self.apply_unitary(&m, qubits);
        Some(())
    }

    /// Applies a diagonal unitary given by its `2^k` diagonal entries on
    /// `targets` (`targets[0]` = most-significant bit):
    /// `rho[i][j] *= d(i) conj(d(j))`.
    fn apply_diagonal_unitary(&mut self, targets: &[usize], d: &[Complex64]) {
        assert_eq!(d.len(), 1 << targets.len(), "diagonal length mismatch");
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < self.n_qubits, "target out of range");
            assert!(!targets[..i].contains(&t), "targets must differ");
        }
        let dim = self.dim;
        let factors: Vec<Complex64> = (0..dim)
            .map(|i| kernels::diag_factor(i, targets, d))
            .collect();
        for (i, row) in self.data.chunks_exact_mut(dim).enumerate() {
            let fi = factors[i];
            for (entry, fj) in row.iter_mut().zip(factors.iter()) {
                *entry *= fi * fj.conj();
            }
        }
    }

    /// Applies a quantum channel given by Kraus operators on `targets`:
    /// `rho -> sum_k K_k rho K_k†`.
    ///
    /// # Panics
    ///
    /// Panics if `kraus` is empty or operator dimensions mismatch.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], targets: &[usize]) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        if let [k] = kraus {
            // Single-Kraus (unitary-like) channel: the sum has one term,
            // so apply it in place — no clone, no accumulator.
            self.apply_left(k, targets);
            self.apply_right_dagger(k, targets);
            return;
        }
        let mut acc = vec![Complex64::ZERO; self.data.len()];
        let original = self.data.clone();
        for k in kraus {
            self.data.copy_from_slice(&original);
            self.apply_left(k, targets);
            self.apply_right_dagger(k, targets);
            for (a, &d) in acc.iter_mut().zip(self.data.iter()) {
                *a += d;
            }
        }
        self.data = acc;
    }

    /// [`DensityMatrix::apply_kraus`] without the single-Kraus fast
    /// path: clone + per-operator accumulate unconditionally. Kept as
    /// the parity reference (the fast path must agree exactly, modulo
    /// the sign of zero the `0 + z` accumulation normalizes).
    pub fn apply_kraus_reference(&mut self, kraus: &[Matrix], targets: &[usize]) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let mut acc = vec![Complex64::ZERO; self.data.len()];
        let original = self.data.clone();
        for k in kraus {
            self.data.copy_from_slice(&original);
            self.apply_left(k, targets);
            self.apply_right_dagger(k, targets);
            for (a, &d) in acc.iter_mut().zip(self.data.iter()) {
                *a += d;
            }
        }
        self.data = acc;
    }

    /// Left multiplication `rho -> (U embedded) rho`, column by column.
    fn apply_left(&mut self, op: &Matrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(op.rows(), 1 << k, "operator dimension mismatch");
        let masks: Vec<usize> = targets.iter().map(|&t| 1usize << t).collect();
        for &t in targets {
            assert!(t < self.n_qubits, "target out of range");
        }
        let dim = self.dim;
        let block = 1usize << k;
        let all_mask: usize = masks.iter().sum();
        let mut rows_idx = vec![0usize; block];
        let mut vin = vec![Complex64::ZERO; block];
        for base in 0..dim {
            if base & all_mask != 0 {
                continue;
            }
            // Row indices of the block: bits of `r` map MSB-first onto targets.
            for (r, row_idx) in rows_idx.iter_mut().enumerate() {
                let mut idx = base;
                for (pos, &m) in masks.iter().enumerate() {
                    if (r >> (k - 1 - pos)) & 1 == 1 {
                        idx |= m;
                    }
                }
                *row_idx = idx;
            }
            for col in 0..dim {
                for (r, &ri) in rows_idx.iter().enumerate() {
                    vin[r] = self.data[ri * dim + col];
                }
                for (r, &ri) in rows_idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &v) in vin.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = op[(r, c)].mul_add(v, acc);
                    }
                    self.data[ri * dim + col] = acc;
                }
            }
        }
    }

    /// Right multiplication `rho -> rho (U embedded)†`, row by row.
    fn apply_right_dagger(&mut self, op: &Matrix, targets: &[usize]) {
        let k = targets.len();
        assert_eq!(op.rows(), 1 << k, "operator dimension mismatch");
        let masks: Vec<usize> = targets.iter().map(|&t| 1usize << t).collect();
        let dim = self.dim;
        let block = 1usize << k;
        let all_mask: usize = masks.iter().sum();
        let mut cols_idx = vec![0usize; block];
        let mut vin = vec![Complex64::ZERO; block];
        for base in 0..dim {
            if base & all_mask != 0 {
                continue;
            }
            for (c, col_idx) in cols_idx.iter_mut().enumerate() {
                let mut idx = base;
                for (pos, &m) in masks.iter().enumerate() {
                    if (c >> (k - 1 - pos)) & 1 == 1 {
                        idx |= m;
                    }
                }
                *col_idx = idx;
            }
            for row in 0..dim {
                for (c, &ci) in cols_idx.iter().enumerate() {
                    vin[c] = self.data[row * dim + ci];
                }
                // (rho U†)[row, c'] = sum_c rho[row, c] conj(U[c', c])
                for (cp, &ci) in cols_idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &v) in vin.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = op[(cp, c)].conj().mul_add(v, acc);
                    }
                    self.data[row * dim + ci] = acc;
                }
            }
        }
    }

    /// Measurement probabilities in the computational basis (the
    /// diagonal): one strided sweep at `dim + 1`, no index decode.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data
            .iter()
            .step_by(self.dim + 1)
            .map(|z| z.re.max(0.0))
            .collect()
    }

    /// Index-decoded [`DensityMatrix::probabilities`], kept as the
    /// bit-parity reference for the strided sweep.
    pub fn probabilities_reference(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.data[i * self.dim + i].re.max(0.0))
            .collect()
    }

    /// Expectation of a diagonal (Z-only) observable: the same strided
    /// diagonal sweep, without materializing the probability vector.
    ///
    /// # Panics
    ///
    /// Panics if the observable contains X/Y factors or widths mismatch.
    pub fn expectation_diagonal(&self, observable: &PauliSum) -> f64 {
        assert_eq!(observable.n_qubits(), self.n_qubits, "width mismatch");
        self.data
            .iter()
            .step_by(self.dim + 1)
            .enumerate()
            .map(|(b, z)| z.re.max(0.0) * observable.eval_diagonal(b))
            .sum()
    }

    /// Expectation of a Hermitian observable given as a Pauli sum
    /// (diagonal sums avoid materializing the observable matrix).
    pub fn expectation_pauli(&self, observable: &PauliSum) -> f64 {
        assert_eq!(observable.n_qubits(), self.n_qubits, "width mismatch");
        if observable.is_diagonal() {
            self.expectation_diagonal(observable)
        } else {
            self.expectation(&observable.matrix())
        }
    }

    /// Expectation of a general Hermitian observable `Tr(rho O)`: row
    /// `i` of `rho` pairs with column `i` of `O`, walked at stride
    /// `dim` over the raw storage — same accumulation order as the
    /// index-decoded reference, hence bit-identical.
    pub fn expectation(&self, observable: &Matrix) -> f64 {
        assert_eq!(observable.rows(), self.dim, "dimension mismatch");
        let dim = self.dim;
        let obs = observable.as_slice();
        let mut acc = Complex64::ZERO;
        for (i, row) in self.data.chunks_exact(dim).enumerate() {
            for (&r, &o) in row.iter().zip(obs[i..].iter().step_by(dim)) {
                acc += r * o;
            }
        }
        acc.re
    }

    /// Index-decoded [`DensityMatrix::expectation`], kept as the
    /// bit-parity reference for the strided sweep.
    pub fn expectation_reference(&self, observable: &Matrix) -> f64 {
        assert_eq!(observable.rows(), self.dim, "dimension mismatch");
        let mut acc = Complex64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += self.data[i * self.dim + j] * observable[(j, i)];
            }
        }
        acc.re
    }

    /// Fidelity with a pure state: `<psi| rho |psi>`.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.n_qubits(), self.n_qubits, "width mismatch");
        let amps = psi.amplitudes();
        let mut acc = Complex64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += amps[i].conj() * self.data[i * self.dim + j] * amps[j];
            }
        }
        acc.re
    }

    /// Samples `shots` computational-basis outcomes from the diagonal.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Counts {
        let mut probs = self.probabilities();
        // Renormalize against round-off (trace should already be ~1).
        let sum: f64 = probs.iter().sum();
        if sum > 0.0 {
            for p in &mut probs {
                *p /= sum;
            }
        }
        Counts::sample_from_probabilities(&probs, shots, self.n_qubits, rng)
    }

    /// Traces out every qubit *not* in `keep`, returning the reduced
    /// state over `keep` (in the listed order; `keep[0]` becomes qubit 0
    /// of the result).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, repeats qubits, or indexes out of range.
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        assert!(!keep.is_empty(), "must keep at least one qubit");
        let mut seen = vec![false; self.n_qubits];
        for &q in keep {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            assert!(!seen[q], "qubit {q} repeated");
            seen[q] = true;
        }
        let traced: Vec<usize> = (0..self.n_qubits).filter(|q| !seen[*q]).collect();
        let k = keep.len();
        let kdim = 1usize << k;
        let mut out = vec![Complex64::ZERO; kdim * kdim];
        let expand = |bits: usize, env: usize| -> usize {
            // Interleave kept bits (per `keep`) and environment bits (per
            // `traced`) into a full index.
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                if (bits >> pos) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            for (pos, &q) in traced.iter().enumerate() {
                if (env >> pos) & 1 == 1 {
                    idx |= 1 << q;
                }
            }
            idx
        };
        for row in 0..kdim {
            for col in 0..kdim {
                let mut acc = Complex64::ZERO;
                for env in 0..(1usize << traced.len()) {
                    let i = expand(row, env);
                    let j = expand(col, env);
                    acc += self.data[i * self.dim + j];
                }
                out[row * kdim + col] = acc;
            }
        }
        DensityMatrix {
            n_qubits: k,
            dim: kdim,
            data: out,
        }
    }

    /// Von Neumann entropy `-Tr(rho ln rho)` in nats (0 for pure states,
    /// `n ln 2` for maximally mixed).
    pub fn von_neumann_entropy(&self) -> f64 {
        let eig = hgp_math::eigen::eigh(&self.to_matrix());
        -eig.values
            .iter()
            .filter(|&&l| l > 1e-12)
            .map(|&l| l * l.ln())
            .sum::<f64>()
    }
}

impl SimBackend for DensityMatrix {
    const NAME: &'static str = "density-matrix";
    const SUPPORTS_CHANNELS: bool = true;

    fn init(n_qubits: usize) -> Self {
        Self::zero_state(n_qubits)
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        DensityMatrix::apply_gate(self, gate, qubits)
    }

    fn apply_unitary(&mut self, op: &Matrix, targets: &[usize]) {
        DensityMatrix::apply_unitary(self, op, targets);
    }

    fn apply_kraus(&mut self, kraus: &[Matrix], targets: &[usize]) {
        DensityMatrix::apply_kraus(self, kraus, targets);
    }

    fn probabilities(&self) -> Vec<f64> {
        DensityMatrix::probabilities(self)
    }

    fn expectation(&self, observable: &PauliSum) -> f64 {
        self.expectation_pauli(observable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::{Circuit, Gate};
    use hgp_math::c64;

    fn bell_circuit() -> Circuit {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        qc
    }

    #[test]
    fn pure_state_round_trip() {
        let psi = StateVector::from_circuit(&bell_circuit()).unwrap();
        let rho = DensityMatrix::from_statevector(&psi);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_evolution_matches_statevector() {
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rx(2, 0.9).rzz(1, 2, 0.4).cx(2, 0);
        let psi = StateVector::from_circuit(&qc).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_circuit(&qc).unwrap();
        let expect = DensityMatrix::from_statevector(&psi);
        for i in 0..8 {
            for j in 0..8 {
                assert!(
                    (rho.get(i, j) - expect.get(i, j)).norm() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::plus_state(2);
        rho.apply_unitary(&Gate::CX.matrix().unwrap(), &[0, 1]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_kraus_mixes_state() {
        // Full depolarizing on one qubit: rho -> I/2.
        let p: f64 = 1.0;
        let kraus = vec![
            Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
            hgp_math::pauli::sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
            hgp_math::pauli::sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
            hgp_math::pauli::sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
        ];
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_kraus(&kraus, &[0]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.get(0, 0).re - 0.5).abs() < 1e-12);
        assert!((rho.get(1, 1).re - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kraus_on_one_qubit_of_entangled_pair() {
        // Dephasing one half of a Bell pair kills off-diagonal coherence.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&bell_circuit()).unwrap();
        let z = hgp_math::pauli::sigma_z();
        let kraus = vec![
            Matrix::identity(2).scale(c64((0.5f64).sqrt(), 0.0)),
            z.scale(c64((0.5f64).sqrt(), 0.0)),
        ];
        rho.apply_kraus(&kraus, &[0]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Populations unchanged, coherence gone.
        assert!((rho.get(0, 0).re - 0.5).abs() < 1e-12);
        assert!((rho.get(3, 3).re - 0.5).abs() < 1e-12);
        assert!(rho.get(0, 3).norm() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.125).abs() < 1e-12);
        for p in rho.probabilities() {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn expectation_diagonal_on_bell() {
        use hgp_math::pauli::{Pauli, PauliString, PauliSum};
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&bell_circuit()).unwrap();
        let zz = PauliSum::from_terms(vec![PauliString::new(
            2,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        assert!((rho.expectation_diagonal(&zz) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn general_expectation_matches_diagonal_path() {
        use hgp_math::pauli::{Pauli, PauliString, PauliSum};
        let mut rho = DensityMatrix::plus_state(2);
        rho.apply_unitary(
            &Gate::Rzz(hgp_circuit::Param::bound(0.8)).matrix().unwrap(),
            &[0, 1],
        );
        let zz = PauliSum::from_terms(vec![PauliString::new(
            2,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        let by_diag = rho.expectation_diagonal(&zz);
        let by_full = rho.expectation(&zz.matrix());
        assert!((by_diag - by_full).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_kraus_application() {
        // A CX expressed as a single-element Kraus channel acts like the gate.
        let mut a = DensityMatrix::plus_state(2);
        let mut b = a.clone();
        let cx = Gate::CX.matrix().unwrap();
        a.apply_unitary(&cx, &[0, 1]);
        b.apply_kraus(std::slice::from_ref(&cx), &[0, 1]);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a.get(i, j) - b.get(i, j)).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn partial_trace_of_bell_pair_is_maximally_mixed() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&bell_circuit()).unwrap();
        let reduced = rho.partial_trace(&[0]);
        assert_eq!(reduced.n_qubits(), 1);
        assert!((reduced.get(0, 0).re - 0.5).abs() < 1e-12);
        assert!((reduced.get(1, 1).re - 0.5).abs() < 1e-12);
        assert!(reduced.get(0, 1).norm() < 1e-12);
        // Entanglement entropy of a Bell pair: ln 2.
        assert!((reduced.von_neumann_entropy() - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn partial_trace_of_product_state_is_pure() {
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_unitary(&hgp_circuit::Gate::H.matrix().unwrap(), &[1]);
        let reduced = rho.partial_trace(&[1]);
        assert!((reduced.purity() - 1.0).abs() < 1e-12);
        assert!(reduced.von_neumann_entropy().abs() < 1e-9);
        // The kept qubit is |+>.
        assert!((reduced.get(0, 1).re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let mut rho = DensityMatrix::plus_state(3);
        rho.apply_unitary(&hgp_circuit::Gate::CX.matrix().unwrap(), &[0, 2]);
        let reduced = rho.partial_trace(&[2, 0]);
        assert!((reduced.trace() - 1.0).abs() < 1e-12);
        assert_eq!(reduced.n_qubits(), 2);
    }

    /// A mildly messy noisy state for the fast-path parity pins below.
    fn noisy_state() -> DensityMatrix {
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rx(2, 0.9).rzz(1, 2, 0.4).rz(0, -0.7);
        let mut rho = DensityMatrix::zero_state(3);
        rho.apply_circuit(&qc).unwrap();
        let z = hgp_math::pauli::sigma_z();
        let kraus = vec![
            Matrix::identity(2).scale(c64((0.8f64).sqrt(), 0.0)),
            z.scale(c64((0.2f64).sqrt(), 0.0)),
        ];
        rho.apply_kraus(&kraus, &[1]);
        rho
    }

    #[test]
    fn single_kraus_fast_path_matches_reference() {
        let cx = Gate::CX.matrix().unwrap();
        let rx = Gate::Rx(hgp_circuit::Param::bound(0.35)).matrix().unwrap();
        for (kraus, targets) in [(vec![cx], vec![0, 1]), (vec![rx], vec![2])] {
            let mut fast = noisy_state();
            let mut slow = noisy_state();
            fast.apply_kraus(&kraus, &targets);
            slow.apply_kraus_reference(&kraus, &targets);
            // Value-exact: the reference's `0 + z` accumulation only
            // normalizes the sign of zero, which `==` ignores.
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn multi_kraus_path_is_unchanged_by_the_fast_path() {
        let z = hgp_math::pauli::sigma_z();
        let kraus = vec![
            Matrix::identity(2).scale(c64((0.7f64).sqrt(), 0.0)),
            z.scale(c64((0.3f64).sqrt(), 0.0)),
        ];
        let mut fast = noisy_state();
        let mut slow = noisy_state();
        fast.apply_kraus(&kraus, &[0]);
        slow.apply_kraus_reference(&kraus, &[0]);
        for (a, b) in fast.probabilities().iter().zip(slow.probabilities()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strided_probabilities_match_reference_bitwise() {
        let rho = noisy_state();
        let fast = rho.probabilities();
        let slow = rho.probabilities_reference();
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strided_expectation_matches_reference_bitwise() {
        use hgp_math::pauli::{Pauli, PauliString, PauliSum};
        let rho = noisy_state();
        let obs = PauliSum::from_terms(vec![
            PauliString::new(3, vec![(0, Pauli::X)], 0.8),
            PauliString::new(3, vec![(1, Pauli::Y), (2, Pauli::Z)], -0.3),
        ])
        .matrix();
        assert_eq!(
            rho.expectation(&obs).to_bits(),
            rho.expectation_reference(&obs).to_bits()
        );
        // The diagonal sweep is pinned through expectation_pauli.
        let zz = PauliSum::from_terms(vec![PauliString::new(
            3,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        assert_eq!(
            rho.expectation_pauli(&zz).to_bits(),
            rho.probabilities_reference()
                .iter()
                .enumerate()
                .map(|(b, &p)| p * zz.eval_diagonal(b))
                .sum::<f64>()
                .to_bits()
        );
    }

    #[test]
    fn sampling_respects_diagonal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&bell_circuit()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let counts = rho.sample(10_000, &mut rng);
        assert!(counts.count(0b01) == 0);
        assert!(counts.count(0b10) == 0);
        assert!((counts.frequency(0b00) - 0.5).abs() < 0.03);
    }
}
