//! Batched-shot replay: lockstep SoA trajectory ensembles over the op
//! tape.
//!
//! The scalar [`super::ReplayEngine`] loop runs one trajectory at a
//! time: every shot of an ensemble decodes the same tape, reloads the
//! same resolved matrices, and re-reads the same channel sampling
//! tables. [`ReplayBatch`] inverts the loop nest — **op-major instead of
//! shot-major**: `S` statevectors live in one structure-of-arrays arena
//! and each tape entry sweeps all `S` resident shots before the next
//! entry is decoded. Tape decode, matrix loads, diagonal factor
//! lookups, and channel-table reads are paid once per op per *block*
//! instead of once per op per *shot*, and the innermost loops run over
//! `S` contiguous lanes with loop-invariant coefficients — the shape the
//! auto-vectorizer wants.
//!
//! # Layout: amplitude-major split re/im planes
//!
//! The arena stores the real and imaginary parts of amplitude `b` of
//! shot `s` at `re[b * S + s]` / `im[b * S + s]` — amplitude-major
//! across shots, with the two components in separate planes. Two
//! alternatives lose:
//!
//! - **shot-major** (`S` contiguous full statevectors) degenerates to
//!   the scalar loop with shared decode — every kernel still walks one
//!   shot's amplitudes with per-amplitude index arithmetic, and nothing
//!   vectorizes across shots;
//! - **interleaved `Complex64` lanes** (amplitude-major, but `(re, im)`
//!   pairs) keep the right loop shape yet defeat the vectorizer: complex
//!   multiply over interleaved pairs needs cross-lane shuffles, and the
//!   measured batched path ran at parity with the scalar engine.
//!
//! Split planes turn every kernel's inner loop into straight-line `f64`
//! lane arithmetic (each shot's real and imaginary parts computed from
//! the same loads), which vectorizes on baseline x86-64. The full-block
//! kernels in [`kern`] are additionally compiled a second time with
//! AVX2 enabled ([`kern_avx2`]) and dispatched by one runtime CPUID
//! check per batch — doubling the lane width from SSE2's two `f64`s to
//! four where the hardware allows. Multiversioning happens at *kernel*
//! granularity (one call per op per block), not per amplitude row:
//! `#[target_feature]` functions cannot inline into baseline callers,
//! so a per-row boundary would pay a call per 32-lane sweep. The
//! dispatch is bit-safe: wider vectors evaluate the *same* scalar
//! expression per lane, and rustc never contracts separate multiplies
//! and adds into FMAs, so both paths produce identical bits.
//! `BENCH_replay.json`'s `replay_batched_expectation_12q_256shots`
//! entry records the measured advantage over the scalar engine on the
//! same tape.
//!
//! # Divergence at channels
//!
//! Channels are the one place shots disagree about what happens next.
//! Each resident shot keeps its own [`StdRng`] (seeded from the
//! *identical* per-trajectory stream the scalar engine uses) and draws
//! exactly where the scalar engine draws — one `f64` per channel per
//! shot. The branch *picks* therefore match the scalar run bit for bit;
//! application is then regrouped: shots that picked the same branch are
//! swept together, shots that picked an identity(-skip) branch are
//! masked out entirely, and general channels accumulate all per-shot
//! branch weights in strided passes over the block before any shot
//! draws.
//!
//! # Why this is bit-identical, not just equivalent
//!
//! Trajectories are independent: shot `s` owns its statevector and its
//! RNG, and no op reads another shot's state. Reordering the loop nest
//! from shot-major to op-major therefore cannot change any shot's
//! result **as long as each shot's own floating-point operation
//! sequence is preserved** — which every kernel here does by mirroring
//! its scalar counterpart's arithmetic expression for expression: the
//! same per-amplitude multiply sequence for diagonal runs
//! ([`DiagOp::factor`] order), the same `m00 * a + m01 * b` dense pair
//! update, the same `mul_add` accumulation chains for 2q quads and
//! generic weight scans (including their exact `x - y + z` association),
//! the same ascending-base accumulation order for weights, norms, and
//! diagonal observables, and the same renormalization
//! (`norm_sqr().sqrt()`, one reciprocal, one scale pass). Splitting a
//! `Complex64` into plane-resident components changes where the two
//! `f64`s live, not one bit of what is computed from them. Property
//! tests in `crates/sim/tests/replay_batch_parity.rs` pin the whole
//! surface against the scalar engine across block sizes, splits, and
//! seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_math::pauli::PauliSum;
use hgp_math::{Complex64, Matrix};
use hgp_obs::profile::{timed, NoProfile, ProfileSink, ReplayOpKind};

use crate::statevector::StateVector;

use super::{
    BranchApply, CompiledChannel, GeneralChannel, MixedChannel, ReplayOp, ReplayProgram, WeightScan,
};

/// Full-block kernel bodies: each sweeps one op over every resident
/// shot of the arena. Bodies are `#[inline(always)]` so the
/// [`kern_avx2`] wrappers re-compile the identical expressions under
/// the wider ISA; every inner loop is the batched transliteration of
/// the scalar kernel's per-amplitude `Complex64` expression (see the
/// module docs for the exact correspondences being preserved).
mod kern {
    use hgp_math::Complex64;

    use super::super::Row1q;
    use super::rows2_mut;
    use crate::kernels::DiagOp;

    /// A fused diagonal run: per amplitude row, the factor sequence is
    /// gathered once, then each factor multiplies every shot's lane in
    /// sequence — per shot, the exact multiply order of
    /// `apply_diag_run_exact` (factors in op order), with the
    /// per-amplitude factor lookups amortized `S`-fold.
    ///
    /// `inv`, when present, is a deferred renormalization: each row is
    /// scaled by the per-shot reciprocal while L1-hot, before the
    /// factor sweeps — the same `a * inv` the scalar engine stored in
    /// its own scale pass.
    #[inline(always)]
    pub fn diag_run(
        re: &mut [f64],
        im: &mut [f64],
        s_n: usize,
        ops: &[DiagOp],
        factors: &mut Vec<Complex64>,
        inv: Option<&[f64]>,
    ) {
        if let Some(inv) = inv {
            assert!(inv.len() == s_n);
        }
        for ((b, row_re), row_im) in re
            .chunks_exact_mut(s_n)
            .enumerate()
            .zip(im.chunks_exact_mut(s_n))
        {
            if let Some(inv) = inv {
                for s in 0..s_n {
                    row_re[s] *= inv[s];
                    row_im[s] *= inv[s];
                }
            }
            factors.clear();
            factors.extend(ops.iter().map(|op| op.factor(b)));
            for &f in factors.iter() {
                for (vr, vi) in row_re.iter_mut().zip(row_im.iter_mut()) {
                    let (r, i) = (*vr, *vi);
                    *vr = r * f.re - i * f.im;
                    *vi = r * f.im + i * f.re;
                }
            }
        }
    }

    /// Dense 1q over every resident shot: the scalar kernel's pair
    /// enumeration with the bit surgery hoisted out of the `S`-wide
    /// inner loop. Per shot, the exact `m00 * a + m01 * b` update of
    /// `apply_dense_1q`, written out over the planes. `m` is
    /// `[m00, m01, m10, m11]`.
    ///
    /// `inv`, when present, is a deferred renormalization: the pair
    /// inputs are scaled by the per-shot reciprocal as they are loaded
    /// (the op overwrites every amplitude, so the scaled value is
    /// consumed, never stored) — the same `a * inv` the scalar engine
    /// stored in its own scale pass.
    ///
    /// Diagonal and anti-diagonal matrices (the shape of most Kraus
    /// branches — thermal-relaxation `K0` is diagonal, Pauli jump
    /// operators are one or the other) skip the half of the update that
    /// multiplies by exact-zero entries, halving the pass's flops. The
    /// skipped term `(c.re * v - c.im * w)` with `c == 0` is `±0.0` for
    /// finite inputs, and dropping a `±0.0` addend can only change a
    /// result's bits when the result is itself a zero — flipping its
    /// sign. Those zero signs never reach an observable: branch weights,
    /// norms, and measurement probabilities square components (`(-0.0)^2
    /// == +0.0`), expectation and weight accumulators start at `+0.0`
    /// (and `+0.0 + ±0.0 == +0.0`), branch-pick comparisons treat `±0.0`
    /// as equal, and no path divides by or takes the sign of an
    /// amplitude. The scalar engine's own `branch_weights_1q` pattern
    /// rows rest on the same erasure argument.
    #[inline(always)]
    pub fn dense1q_all(
        re: &mut [f64],
        im: &mut [f64],
        s_n: usize,
        target: usize,
        m: [Complex64; 4],
        inv: Option<&[f64]>,
    ) {
        let [m00, m01, m10, m11] = m;
        let bit = 1usize << target;
        let low = bit - 1;
        let dim = re.len() / s_n;
        if let Some(inv) = inv {
            assert!(inv.len() == s_n);
        }
        let zero = |c: Complex64| c.re == 0.0 && c.im == 0.0;
        let diag = zero(m01) && zero(m10);
        let anti = zero(m00) && zero(m11);
        for g in 0..dim / 2 {
            let i = ((g & !low) << 1) | (g & low);
            let j = i | bit;
            let (ri_re, rj_re) = rows2_mut(re, s_n, i, j);
            let (ri_im, rj_im) = rows2_mut(im, s_n, i, j);
            if diag {
                match inv {
                    None => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s], ri_im[s]);
                            let (yr, yi) = (rj_re[s], rj_im[s]);
                            ri_re[s] = m00.re * xr - m00.im * xi;
                            ri_im[s] = m00.re * xi + m00.im * xr;
                            rj_re[s] = m11.re * yr - m11.im * yi;
                            rj_im[s] = m11.re * yi + m11.im * yr;
                        }
                    }
                    Some(inv) => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s] * inv[s], ri_im[s] * inv[s]);
                            let (yr, yi) = (rj_re[s] * inv[s], rj_im[s] * inv[s]);
                            ri_re[s] = m00.re * xr - m00.im * xi;
                            ri_im[s] = m00.re * xi + m00.im * xr;
                            rj_re[s] = m11.re * yr - m11.im * yi;
                            rj_im[s] = m11.re * yi + m11.im * yr;
                        }
                    }
                }
            } else if anti {
                match inv {
                    None => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s], ri_im[s]);
                            let (yr, yi) = (rj_re[s], rj_im[s]);
                            ri_re[s] = m01.re * yr - m01.im * yi;
                            ri_im[s] = m01.re * yi + m01.im * yr;
                            rj_re[s] = m10.re * xr - m10.im * xi;
                            rj_im[s] = m10.re * xi + m10.im * xr;
                        }
                    }
                    Some(inv) => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s] * inv[s], ri_im[s] * inv[s]);
                            let (yr, yi) = (rj_re[s] * inv[s], rj_im[s] * inv[s]);
                            ri_re[s] = m01.re * yr - m01.im * yi;
                            ri_im[s] = m01.re * yi + m01.im * yr;
                            rj_re[s] = m10.re * xr - m10.im * xi;
                            rj_im[s] = m10.re * xi + m10.im * xr;
                        }
                    }
                }
            } else {
                match inv {
                    None => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s], ri_im[s]);
                            let (yr, yi) = (rj_re[s], rj_im[s]);
                            ri_re[s] = (m00.re * xr - m00.im * xi) + (m01.re * yr - m01.im * yi);
                            ri_im[s] = (m00.re * xi + m00.im * xr) + (m01.re * yi + m01.im * yr);
                            rj_re[s] = (m10.re * xr - m10.im * xi) + (m11.re * yr - m11.im * yi);
                            rj_im[s] = (m10.re * xi + m10.im * xr) + (m11.re * yi + m11.im * yr);
                        }
                    }
                    Some(inv) => {
                        for s in 0..s_n {
                            let (xr, xi) = (ri_re[s] * inv[s], ri_im[s] * inv[s]);
                            let (yr, yi) = (rj_re[s] * inv[s], rj_im[s] * inv[s]);
                            ri_re[s] = (m00.re * xr - m00.im * xi) + (m01.re * yr - m01.im * yi);
                            ri_im[s] = (m00.re * xi + m00.im * xr) + (m01.re * yi + m01.im * yr);
                            rj_re[s] = (m10.re * xr - m10.im * xi) + (m11.re * yr - m11.im * yi);
                            rj_im[s] = (m10.re * xi + m10.im * xr) + (m11.re * yi + m11.im * yr);
                        }
                    }
                }
            }
        }
    }

    /// Dense 2q over every resident shot: the scalar kernel's quad
    /// enumeration (`apply_dense_2q`) with the index surgery hoisted.
    /// The four rows are gathered into contiguous scratch, then each
    /// output row runs the identical four-term `mul_add` accumulation
    /// chain per shot (exact `(m.re * v.re - m.im * v.im) + acc`
    /// association).
    /// `inv`, when present, is a deferred renormalization: the quad
    /// rows are scaled by the per-shot reciprocal during the gather
    /// (the op overwrites every amplitude, so the scaled value is
    /// consumed, never stored) — the same `a * inv` the scalar engine
    /// stored in its own scale pass.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn dense2q_all(
        re: &mut [f64],
        im: &mut [f64],
        s_n: usize,
        t_hi: usize,
        t_lo: usize,
        mm: &[[Complex64; 4]; 4],
        quad_re: &mut [f64],
        quad_im: &mut [f64],
        inv: Option<&[f64]>,
    ) {
        let bh = 1usize << t_hi;
        let bl = 1usize << t_lo;
        let (b_lo, b_hi) = (bh.min(bl), bh.max(bl));
        let block = 2 * b_hi;
        let quarter = block / 4;
        let dim = re.len() / s_n;
        if let Some(inv) = inv {
            assert!(inv.len() == s_n);
        }
        for blk0 in (0..dim).step_by(block) {
            for g in 0..quarter {
                let low = g & (b_lo - 1);
                let mid = (g ^ low) << 1;
                let i0 = {
                    let partial = mid | low;
                    let lowpart = partial & (b_hi - 1);
                    ((partial ^ lowpart) << 1) | lowpart
                };
                // Row indices in operator basis order |t_hi t_lo>.
                let base = blk0 + i0;
                let rows = [base, base | bl, base | bh, base | bh | bl];
                match inv {
                    None => {
                        for (q, &idx) in rows.iter().enumerate() {
                            quad_re[q * s_n..(q + 1) * s_n]
                                .copy_from_slice(&re[idx * s_n..idx * s_n + s_n]);
                            quad_im[q * s_n..(q + 1) * s_n]
                                .copy_from_slice(&im[idx * s_n..idx * s_n + s_n]);
                        }
                    }
                    Some(inv) => {
                        for (q, &idx) in rows.iter().enumerate() {
                            let src_re = &re[idx * s_n..idx * s_n + s_n];
                            let src_im = &im[idx * s_n..idx * s_n + s_n];
                            let dst_re = &mut quad_re[q * s_n..(q + 1) * s_n];
                            let dst_im = &mut quad_im[q * s_n..(q + 1) * s_n];
                            for s in 0..s_n {
                                dst_re[s] = src_re[s] * inv[s];
                                dst_im[s] = src_im[s] * inv[s];
                            }
                        }
                    }
                }
                for (r, &idx) in rows.iter().enumerate() {
                    let out_re = &mut re[idx * s_n..idx * s_n + s_n];
                    let out_im = &mut im[idx * s_n..idx * s_n + s_n];
                    let mr = mm[r];
                    for s in 0..s_n {
                        let mut ar = 0.0;
                        let mut ai = 0.0;
                        for (c, mc) in mr.iter().enumerate() {
                            let (vr, vi) = (quad_re[c * s_n + s], quad_im[c * s_n + s]);
                            ar += mc.re * vr - mc.im * vi;
                            ai += mc.re * vi + mc.im * vr;
                        }
                        out_re[s] = ar;
                        out_im[s] = ai;
                    }
                }
            }
        }
    }

    /// Single-qubit branch weights for all shots and all Kraus
    /// operators in one pass: the sparsity-specialized sweeps of
    /// `branch_weight_1q` run amplitude-major, each shot accumulating
    /// over the same pairs in the same ascending-base order (per pair:
    /// bit-clear term, then bit-set term).
    ///
    /// The branch loop runs *inside* the pair loop, so the lo/hi rows
    /// stay L1-resident across all Kraus operators instead of the state
    /// being re-streamed once per operator. The swap is bit-exact:
    /// weight rows accumulate independently, and each row still sees
    /// its pairs in the same ascending order with the same per-pair
    /// term sequence.
    /// `inv`, when present, is a deferred renormalization: the lo/hi
    /// rows are scaled in place (the scan does not overwrite the state,
    /// so the scaled amplitudes must be stored for later ops) while
    /// L1-hot, before the weight terms read them — the same `a * inv`
    /// the scalar engine stored in its own scale pass.
    #[inline(always)]
    pub fn weights_1q_scan(
        weights: &mut [f64],
        re: &mut [f64],
        im: &mut [f64],
        s_n: usize,
        target: usize,
        rows: &[(Row1q, Row1q)],
        inv: Option<&[f64]>,
    ) {
        let bit = 1usize << target;
        let dim = re.len() / s_n;
        weights[..rows.len() * s_n].fill(0.0);
        if let Some(inv) = inv {
            assert!(inv.len() == s_n);
        }
        for base in (0..dim).step_by(2 * bit) {
            for off in 0..bit {
                let lo = base + off;
                let hi = base + bit + off;
                let (lo_re, hi_re) = rows2_mut(re, s_n, lo, hi);
                let (lo_im, hi_im) = rows2_mut(im, s_n, lo, hi);
                if let Some(inv) = inv {
                    for s in 0..s_n {
                        lo_re[s] *= inv[s];
                        lo_im[s] *= inv[s];
                        hi_re[s] *= inv[s];
                        hi_im[s] *= inv[s];
                    }
                }
                let (lo_re, lo_im) = (&*lo_re, &*lo_im);
                let (hi_re, hi_im) = (&*hi_re, &*hi_im);
                for (k, &r) in rows.iter().enumerate() {
                    let w = &mut weights[k * s_n..(k + 1) * s_n];
                    match r {
                        (Row1q::Zero, Row1q::Zero) => {}
                        (Row1q::Lo(m0), Row1q::Hi(m1)) => {
                            for (s, ws) in w.iter_mut().enumerate() {
                                let tr = m0.re * lo_re[s] - m0.im * lo_im[s];
                                let ti = m0.re * lo_im[s] + m0.im * lo_re[s];
                                *ws += tr * tr + ti * ti;
                                let ur = m1.re * hi_re[s] - m1.im * hi_im[s];
                                let ui = m1.re * hi_im[s] + m1.im * hi_re[s];
                                *ws += ur * ur + ui * ui;
                            }
                        }
                        (Row1q::Hi(m), Row1q::Zero) | (Row1q::Zero, Row1q::Hi(m)) => {
                            for (s, ws) in w.iter_mut().enumerate() {
                                let tr = m.re * hi_re[s] - m.im * hi_im[s];
                                let ti = m.re * hi_im[s] + m.im * hi_re[s];
                                *ws += tr * tr + ti * ti;
                            }
                        }
                        (Row1q::Lo(m), Row1q::Zero) | (Row1q::Zero, Row1q::Lo(m)) => {
                            for (s, ws) in w.iter_mut().enumerate() {
                                let tr = m.re * lo_re[s] - m.im * lo_im[s];
                                let ti = m.re * lo_im[s] + m.im * lo_re[s];
                                *ws += tr * tr + ti * ti;
                            }
                        }
                        (r0, r1) => {
                            // The reference per-row closure of
                            // `branch_weight_1q`, over plane lanes
                            // (`Both` keeps the literal `+ 0.0` of
                            // `mul_add(a0, ZERO)`).
                            let row = |r: Row1q, a0r: f64, a0i: f64, a1r: f64, a1i: f64| match r {
                                Row1q::Zero => 0.0,
                                Row1q::Lo(m) => {
                                    let tr = m.re * a0r - m.im * a0i;
                                    let ti = m.re * a0i + m.im * a0r;
                                    tr * tr + ti * ti
                                }
                                Row1q::Hi(m) => {
                                    let tr = m.re * a1r - m.im * a1i;
                                    let ti = m.re * a1i + m.im * a1r;
                                    tr * tr + ti * ti
                                }
                                Row1q::Both(l, h) => {
                                    let tr = (l.re * a0r - l.im * a0i) + 0.0;
                                    let ti = (l.re * a0i + l.im * a0r) + 0.0;
                                    let ur = (h.re * a1r - h.im * a1i) + tr;
                                    let ui = (h.re * a1i + h.im * a1r) + ti;
                                    ur * ur + ui * ui
                                }
                            };
                            for (s, ws) in w.iter_mut().enumerate() {
                                let (a0r, a0i) = (lo_re[s], lo_im[s]);
                                let (a1r, a1i) = (hi_re[s], hi_im[s]);
                                *ws += row(r0, a0r, a0i, a1r, a1i);
                                *ws += row(r1, a0r, a0i, a1r, a1i);
                            }
                        }
                    }
                }
            }
        }
    }

    /// `norms[s] += |a_b|^2` over the whole arena, rows ascending — the
    /// ascending-index squared-norm accumulation of
    /// `StateVector::renormalize` and `draw_outcome`, all shots at once.
    #[inline(always)]
    pub fn norm_acc_all(norms: &mut [f64], re: &[f64], im: &[f64], s_n: usize) {
        for (row_re, row_im) in re.chunks_exact(s_n).zip(im.chunks_exact(s_n)) {
            for (s, acc) in norms.iter_mut().enumerate() {
                *acc += row_re[s] * row_re[s] + row_im[s] * row_im[s];
            }
        }
    }

    /// `a *= inv[s]` over the whole arena — the renormalization scale
    /// pass with each shot's own precomputed reciprocal.
    #[inline(always)]
    pub fn scale_all(re: &mut [f64], im: &mut [f64], s_n: usize, inv: &[f64]) {
        for (row_re, row_im) in re.chunks_exact_mut(s_n).zip(im.chunks_exact_mut(s_n)) {
            for s in 0..s_n {
                row_re[s] *= inv[s];
                row_im[s] *= inv[s];
            }
        }
    }

    /// `out[s] += |a_b|^2 * diag[b]` over the whole arena, rows
    /// ascending — the diagonal observable reduction of the scalar
    /// engine, all shots at once.
    #[inline(always)]
    pub fn diag_expect_all(out: &mut [f64], re: &[f64], im: &[f64], s_n: usize, diag: &[f64]) {
        for ((row_re, row_im), &d) in re
            .chunks_exact(s_n)
            .zip(im.chunks_exact(s_n))
            .zip(diag.iter())
        {
            for (s, o) in out.iter_mut().enumerate() {
                *o += (row_re[s] * row_re[s] + row_im[s] * row_im[s]) * d;
            }
        }
    }
}

/// Generates a re-compile of the [`kern`] kernels under a wider ISA.
/// Each wrapper inlines the identical `#[inline(always)]` body under the
/// listed target features: same per-lane expressions, same results bit
/// for bit (rustc emits no FMA contraction), just more `f64` lanes per
/// vector op than the baseline build's SSE2 pair. Multiversioning sits
/// at whole-kernel granularity — one dispatched call per op per block —
/// because `#[target_feature]` functions cannot inline into baseline
/// callers, so a finer split would pay a call per amplitude row.
macro_rules! lane_module {
    ($(#[$doc:meta])* $mod_name:ident, $features:literal) => {
        $(#[$doc])*
        #[cfg(target_arch = "x86_64")]
        mod $mod_name {
            use hgp_math::Complex64;

            use super::super::Row1q;
            use super::kern;
            use crate::kernels::DiagOp;

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::diag_run`] recompiled under wider codegen: every
            /// slice access keeps its bounds check and `f64` slices
            /// carry no ISA-dependent alignment requirement, so the
            /// sole UB hazard is executing the wider instructions on a
            /// CPU that lacks them.
            #[target_feature(enable = $features)]
            pub unsafe fn diag_run(
                re: &mut [f64],
                im: &mut [f64],
                s_n: usize,
                ops: &[DiagOp],
                factors: &mut Vec<Complex64>,
                inv: Option<&[f64]>,
            ) {
                kern::diag_run(re, im, s_n, ops, factors, inv);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::dense1q_all`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            pub unsafe fn dense1q_all(
                re: &mut [f64],
                im: &mut [f64],
                s_n: usize,
                target: usize,
                m: [Complex64; 4],
                inv: Option<&[f64]>,
            ) {
                kern::dense1q_all(re, im, s_n, target, m, inv);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::dense2q_all`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn dense2q_all(
                re: &mut [f64],
                im: &mut [f64],
                s_n: usize,
                t_hi: usize,
                t_lo: usize,
                mm: &[[Complex64; 4]; 4],
                quad_re: &mut [f64],
                quad_im: &mut [f64],
                inv: Option<&[f64]>,
            ) {
                kern::dense2q_all(re, im, s_n, t_hi, t_lo, mm, quad_re, quad_im, inv);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::weights_1q_scan`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn weights_1q_scan(
                weights: &mut [f64],
                re: &mut [f64],
                im: &mut [f64],
                s_n: usize,
                target: usize,
                rows: &[(Row1q, Row1q)],
                inv: Option<&[f64]>,
            ) {
                kern::weights_1q_scan(weights, re, im, s_n, target, rows, inv);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::norm_acc_all`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            pub unsafe fn norm_acc_all(norms: &mut [f64], re: &[f64], im: &[f64], s_n: usize) {
                kern::norm_acc_all(norms, re, im, s_n);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::scale_all`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            pub unsafe fn scale_all(re: &mut [f64], im: &mut [f64], s_n: usize, inv: &[f64]) {
                kern::scale_all(re, im, s_n, inv);
            }

            /// # Safety
            ///
            /// The running CPU must provide this module's target
            /// features — the *only* precondition. The body is the safe
            /// [`kern::diag_expect_all`] recompiled under wider codegen:
            /// bounds checks remain, no alignment obligations arise,
            /// so unavailable instructions are the sole UB hazard.
            #[target_feature(enable = $features)]
            pub unsafe fn diag_expect_all(
                out: &mut [f64],
                re: &[f64],
                im: &[f64],
                s_n: usize,
                diag: &[f64],
            ) {
                kern::diag_expect_all(out, re, im, s_n, diag);
            }
        }
    };
}

lane_module!(
    /// [`kern`] under AVX2 codegen: four `f64` lanes per vector op.
    kern_avx2,
    "avx2"
);
lane_module!(
    /// [`kern`] under AVX-512 codegen: eight `f64` lanes per vector op.
    /// `vl`/`dq` let LLVM use the 512-bit register file for the mixed
    /// 128/256-bit tails the sweeps produce at small shot counts.
    kern_avx512,
    "avx512f,avx512vl,avx512dq"
);

/// The widest kernel build the running CPU supports, decided by one
/// CPUID probe when a [`ReplayBatch`] is built and cached for every
/// dispatch after that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lanes {
    /// Eight `f64` lanes ([`kern_avx512`]).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// Four `f64` lanes ([`kern_avx2`]).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// The crate's baseline build (SSE2 on x86-64).
    Baseline,
}

/// Calls one [`kern`] kernel through the batch's cached ISA choice.
macro_rules! kernel {
    ($lanes:expr, $name:ident($($arg:expr),* $(,)?)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            match $lanes {
                Lanes::Avx512 => {
                    // SAFETY: `Lanes::Avx512` is only ever constructed by
                    // `lane_isa` after `is_x86_feature_detected!` confirmed
                    // avx512f, avx512vl, and avx512dq on this CPU — the
                    // wrapper's sole precondition (its body is the safe
                    // `kern` kernel; see the `lane_module!` contracts).
                    unsafe { kern_avx512::$name($($arg),*) }
                }
                Lanes::Avx2 => {
                    // SAFETY: `Lanes::Avx2` is only ever constructed by
                    // `lane_isa` after `is_x86_feature_detected!` confirmed
                    // avx2 on this CPU — the wrapper's sole precondition
                    // (its body is the safe `kern` kernel; see the
                    // `lane_module!` contracts).
                    unsafe { kern_avx2::$name($($arg),*) }
                }
                Lanes::Baseline => kern::$name($($arg),*),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = $lanes;
            kern::$name($($arg),*)
        }
    }};
}

/// Probes the running CPU and picks the kernel build.
///
/// The default choice is AVX2 when the CPU has it: on the server cores
/// this workload targets, 512-bit ops trigger frequency licensing and
/// issue on a single fused port, measuring consistently *slower* than
/// the AVX2 build despite the doubled lane width. `HGP_REPLAY_LANES`
/// overrides the choice (`avx512` / `avx2` / `baseline`) — every tier
/// computes bit-identical results, so the knob only trades lane width;
/// set `avx512` on cores with dual 512-bit ports. Unsupported or
/// unknown requests fall back to the probed default.
fn lane_isa() -> Lanes {
    #[cfg(target_arch = "x86_64")]
    {
        let want = std::env::var("HGP_REPLAY_LANES").unwrap_or_default();
        if want == "baseline" {
            return Lanes::Baseline;
        }
        if want == "avx512"
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            return Lanes::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Lanes::Avx2;
        }
    }
    Lanes::Baseline
}

/// Arena bytes one shot block targets. One amplitude-major sweep streams
/// the whole arena, so the block should sit in cache while keeping the
/// `S`-wide inner loops long enough to fill the vector lanes; the sweet
/// spot measured on the 12-qubit serving workload is tens of shots.
const BLOCK_ARENA_BYTES: usize = 1 << 21;

/// The default shots-per-block of the batched path for an `n_qubits`
/// program: as many shots as fit [`BLOCK_ARENA_BYTES`], clamped to
/// `1..=64` (tiny states gain nothing past 64 lanes; wide states fall
/// back to one shot per block, i.e. the scalar access pattern).
pub fn default_block_size(n_qubits: usize) -> usize {
    let per_shot = std::mem::size_of::<Complex64>() << n_qubits;
    (BLOCK_ARENA_BYTES / per_shot).clamp(1, 64)
}

/// A structure-of-arrays block of `S` trajectory statevectors replayed
/// in lockstep over one [`ReplayProgram`] tape. See the module docs for
/// the layout and the bit-parity argument.
///
/// A batch is the per-worker arena of the batched engine entry points
/// ([`super::ReplayEngine::expectations_batched`] /
/// [`super::ReplayEngine::sample_counts_batched`]): allocated once per
/// shot block, reused across the whole tape, no per-shot allocation.
#[derive(Debug)]
pub struct ReplayBatch {
    n_qubits: usize,
    /// Resident shots `S` (the SoA stride).
    n_shots: usize,
    /// Real plane: `Re(amps[b])` of shot `s` at `re[b * n_shots + s]`.
    re: Vec<f64>,
    /// Imaginary plane, same indexing.
    im: Vec<f64>,
    /// One RNG per resident shot, consumed in exactly the scalar
    /// engine's draw order for that shot.
    rngs: Vec<StdRng>,
    /// General-channel weight accumulators, `weights[k * n_shots + s]` =
    /// `||K_k psi_s||^2`.
    weights: Vec<f64>,
    /// Per-shot squared norms (renormalization, outcome draws).
    norms: Vec<f64>,
    /// Per-shot branch picks of the channel being applied.
    picks: Vec<usize>,
    /// Shot-index scratch for branch application groups.
    group: Vec<usize>,
    /// Diagonal factor scratch for fused runs.
    factors: Vec<Complex64>,
    /// Quad-row gather scratch for the dense 2q kernel (4 rows x S).
    quad_re: Vec<f64>,
    /// Imaginary half of the quad gather scratch.
    quad_im: Vec<f64>,
    /// Per-shot reciprocals of a deferred renormalization scale pass
    /// (`1.0` for shots the pass does not touch). Valid while
    /// `pending` is set; fused into the next full sweep instead of
    /// paying a standalone read+write pass over the arena.
    inv: Vec<f64>,
    /// A deferred scale pass is outstanding in `inv`.
    pending: bool,
    /// Widest kernel build the CPU supports (CPUID-checked once per
    /// batch, dispatched through [`kernel!`](macro) per op).
    lanes: Lanes,
    /// Per-shot fallback state: operators wider than two qubits (which
    /// no recorded schedule in this workspace produces) and
    /// non-diagonal observables extract one shot here and reuse the
    /// scalar [`StateVector`] machinery.
    psi: StateVector,
}

impl ReplayBatch {
    /// A batch holding `n_shots` resident shots of `program`'s width.
    ///
    /// # Panics
    ///
    /// Panics if `n_shots` is zero.
    pub fn for_program(program: &ReplayProgram, n_shots: usize) -> Self {
        assert!(n_shots > 0, "need at least one resident shot");
        let n_qubits = program.n_qubits();
        let dim = 1usize << n_qubits;
        Self {
            n_qubits,
            n_shots,
            re: vec![0.0; dim * n_shots],
            im: vec![0.0; dim * n_shots],
            rngs: Vec::with_capacity(n_shots),
            weights: vec![0.0; program.max_branches * n_shots],
            norms: vec![0.0; n_shots],
            picks: vec![0; n_shots],
            group: Vec::with_capacity(n_shots),
            factors: Vec::new(),
            quad_re: vec![0.0; 4 * n_shots],
            quad_im: vec![0.0; 4 * n_shots],
            inv: vec![1.0; n_shots],
            pending: false,
            lanes: lane_isa(),
            psi: StateVector::zero_state(n_qubits),
        }
    }

    /// Resident shot count `S`.
    pub fn n_shots(&self) -> usize {
        self.n_shots
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The RNG of resident shot `s`, positioned wherever the tape left
    /// it — the scalar engine's post-run stream position for that shot.
    pub fn rng_mut(&mut self, s: usize) -> &mut StdRng {
        &mut self.rngs[s]
    }

    /// Replays `program` over all resident shots in lockstep, shot `s`
    /// seeded from `seeds[s]` — bit-identical per shot to
    /// [`ReplayProgram::run_into`] with `StdRng::seed_from_u64(seeds[s])`.
    ///
    /// # Panics
    ///
    /// Panics if the program width or seed count disagrees with the
    /// batch.
    pub fn run(&mut self, program: &ReplayProgram, seeds: &[u64]) {
        self.run_profiled(program, seeds, &NoProfile);
    }

    /// [`ReplayBatch::run`] with an opt-in [`ProfileSink`] attributing
    /// each tape op's wall time to its [`ReplayOpKind`] (dense ops by
    /// arity, channels by shape, the end-of-tape deferred scale pass to
    /// [`ReplayOpKind::Renorm`]; a scale pass a channel resolves
    /// mid-tape is charged to that channel). With [`NoProfile`] this
    /// monomorphizes to the unprofiled loop exactly; with any sink the
    /// kernels, fusion decisions, and RNG streams are untouched, so
    /// every shot stays bit-identical.
    pub fn run_profiled<P: ProfileSink>(
        &mut self,
        program: &ReplayProgram,
        seeds: &[u64],
        sink: &P,
    ) {
        assert_eq!(program.n_qubits(), self.n_qubits, "batch width");
        assert_eq!(seeds.len(), self.n_shots, "one seed per resident shot");
        self.rngs.clear();
        // hgp-analysis: allow(d2) -- `seeds` are caller-supplied leaf seeds; the
        // replay engine derives them per shot via `stream_seed(mix64(base), i)`.
        let rngs = seeds.iter().map(|&s| StdRng::seed_from_u64(s));
        self.rngs.extend(rngs);
        self.reset_zero();
        for op in &program.ops {
            match op {
                ReplayOp::DiagRun { start, len } => timed(sink, ReplayOpKind::DiagRun, || {
                    let ops = &program.diag[*start..*start + *len];
                    let lanes = self.lanes;
                    let s_n = self.n_shots;
                    let pending = std::mem::replace(&mut self.pending, false);
                    let Self {
                        re,
                        im,
                        factors,
                        inv,
                        ..
                    } = self;
                    let inv = pending.then_some(&inv[..]);
                    kernel!(lanes, diag_run(re, im, s_n, ops, factors, inv));
                }),
                ReplayOp::Apply { targets, matrix } => {
                    let kind = if targets.len() == 1 {
                        ReplayOpKind::Dense1q
                    } else {
                        ReplayOpKind::Dense2q
                    };
                    timed(sink, kind, || self.apply_dense_fused(matrix, targets))
                }
                ReplayOp::Channel(c) => match &program.channels[*c] {
                    CompiledChannel::Mixed(mix) => {
                        timed(sink, ReplayOpKind::MixedChannel, || self.apply_mixed(mix))
                    }
                    CompiledChannel::General(gen) => {
                        timed(sink, ReplayOpKind::GeneralChannel, || {
                            self.apply_general(gen)
                        })
                    }
                },
            }
        }
        // The tape may end on a general channel whose scale pass is
        // still deferred; readouts must see the renormalized state.
        timed(sink, ReplayOpKind::Renorm, || self.resolve_pending());
    }

    /// `|0...0>` in every resident shot.
    fn reset_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[..self.n_shots].fill(1.0);
        self.pending = false;
    }

    /// Pays an outstanding deferred scale pass as a standalone sweep —
    /// the fallback for successor ops that cannot fuse it (mixed
    /// channels, generic weight scans, embed fallbacks, end of tape).
    fn resolve_pending(&mut self) {
        if std::mem::replace(&mut self.pending, false) {
            let s_n = self.n_shots;
            kernel!(
                self.lanes,
                scale_all(&mut self.re, &mut self.im, s_n, &self.inv)
            );
        }
    }

    /// A top-of-tape dense operator over every resident shot, folding
    /// any deferred scale pass into the sweep (1q/2q overwrite every
    /// amplitude, so the scaled inputs are consumed in registers).
    fn apply_dense_fused(&mut self, m: &Matrix, targets: &[usize]) {
        match targets.len() {
            1 | 2 => {
                let lanes = self.lanes;
                let s_n = self.n_shots;
                let pending = std::mem::replace(&mut self.pending, false);
                if targets.len() == 1 {
                    debug_assert_eq!(m.rows(), 2);
                    let mm = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
                    let Self { re, im, inv, .. } = self;
                    let inv = pending.then_some(&inv[..]);
                    kernel!(lanes, dense1q_all(re, im, s_n, targets[0], mm, inv));
                } else {
                    debug_assert_eq!(m.rows(), 4);
                    debug_assert_ne!(targets[0], targets[1]);
                    let mm = quad_matrix(m);
                    let Self {
                        re,
                        im,
                        inv,
                        quad_re,
                        quad_im,
                        ..
                    } = self;
                    let inv = pending.then_some(&inv[..]);
                    kernel!(
                        lanes,
                        dense2q_all(
                            re, im, s_n, targets[0], targets[1], &mm, quad_re, quad_im, inv
                        )
                    );
                }
            }
            _ => {
                self.resolve_pending();
                let all: Vec<usize> = (0..self.n_shots).collect();
                self.embed_fallback(m, targets, &all);
            }
        }
    }

    /// Applies a dense operator to every resident shot, dispatching on
    /// arity exactly like [`StateVector::apply_operator`]. Only called
    /// with no deferred scale outstanding (channel-internal branch
    /// applies).
    fn apply_operator_all(&mut self, m: &Matrix, targets: &[usize]) {
        debug_assert!(!self.pending);
        match targets.len() {
            1 => {
                debug_assert_eq!(m.rows(), 2);
                let mm = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
                kernel!(
                    self.lanes,
                    dense1q_all(
                        &mut self.re,
                        &mut self.im,
                        self.n_shots,
                        targets[0],
                        mm,
                        None
                    )
                );
            }
            2 => {
                debug_assert_eq!(m.rows(), 4);
                debug_assert_ne!(targets[0], targets[1]);
                let mm = quad_matrix(m);
                kernel!(
                    self.lanes,
                    dense2q_all(
                        &mut self.re,
                        &mut self.im,
                        self.n_shots,
                        targets[0],
                        targets[1],
                        &mm,
                        &mut self.quad_re,
                        &mut self.quad_im,
                        None,
                    )
                );
            }
            _ => {
                let all: Vec<usize> = (0..self.n_shots).collect();
                self.embed_fallback(m, targets, &all);
            }
        }
    }

    /// Applies a dense operator to the listed shots, dispatching on
    /// arity exactly like [`StateVector::apply_operator`].
    fn apply_operator_group(&mut self, m: &Matrix, targets: &[usize], group: &[usize]) {
        if group.len() == self.n_shots {
            return self.apply_operator_all(m, targets);
        }
        match targets.len() {
            1 => self.dense_1q_masked(targets[0], m, group),
            2 => self.dense_2q_masked(targets[0], targets[1], m, group),
            _ => self.embed_fallback(m, targets, group),
        }
    }

    /// Dense 1q restricted to the listed shots (divergent channel
    /// branches): per listed shot, the same pair update via direct
    /// indexing.
    fn dense_1q_masked(&mut self, target: usize, m: &Matrix, group: &[usize]) {
        let s_n = self.n_shots;
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let bit = 1usize << target;
        let low = bit - 1;
        let dim = self.re.len() / s_n;
        for g in 0..dim / 2 {
            let i = (((g & !low) << 1) | (g & low)) * s_n;
            let j = i + bit * s_n;
            for &s in group {
                let (xr, xi) = (self.re[i + s], self.im[i + s]);
                let (yr, yi) = (self.re[j + s], self.im[j + s]);
                self.re[i + s] = (m00.re * xr - m00.im * xi) + (m01.re * yr - m01.im * yi);
                self.im[i + s] = (m00.re * xi + m00.im * xr) + (m01.re * yi + m01.im * yr);
                self.re[j + s] = (m10.re * xr - m10.im * xi) + (m11.re * yr - m11.im * yi);
                self.im[j + s] = (m10.re * xi + m10.im * xr) + (m11.re * yi + m11.im * yr);
            }
        }
    }

    /// Dense 2q restricted to the listed shots: per listed shot, the
    /// identical quad `mul_add` chains via direct indexing.
    fn dense_2q_masked(&mut self, t_hi: usize, t_lo: usize, m: &Matrix, group: &[usize]) {
        let s_n = self.n_shots;
        let mm = quad_matrix(m);
        let bh = 1usize << t_hi;
        let bl = 1usize << t_lo;
        let (b_lo, b_hi) = (bh.min(bl), bh.max(bl));
        let block = 2 * b_hi;
        let quarter = block / 4;
        let dim = self.re.len() / s_n;
        for blk0 in (0..dim).step_by(block) {
            for g in 0..quarter {
                let low = g & (b_lo - 1);
                let mid = (g ^ low) << 1;
                let i0 = {
                    let partial = mid | low;
                    let lowpart = partial & (b_hi - 1);
                    ((partial ^ lowpart) << 1) | lowpart
                };
                let base = blk0 + i0;
                let rows = [base, base | bl, base | bh, base | bh | bl];
                for &s in group {
                    let mut vr = [0.0; 4];
                    let mut vi = [0.0; 4];
                    for (q, &idx) in rows.iter().enumerate() {
                        vr[q] = self.re[idx * s_n + s];
                        vi[q] = self.im[idx * s_n + s];
                    }
                    for (r, &idx) in rows.iter().enumerate() {
                        let mut ar = 0.0;
                        let mut ai = 0.0;
                        for (c, mc) in mm[r].iter().enumerate() {
                            ar += mc.re * vr[c] - mc.im * vi[c];
                            ai += mc.re * vi[c] + mc.im * vr[c];
                        }
                        self.re[idx * s_n + s] = ar;
                        self.im[idx * s_n + s] = ai;
                    }
                }
            }
        }
    }

    /// Operators wider than two qubits: extract each listed shot into
    /// the scratch [`StateVector`] and reuse the scalar embed path —
    /// trivially the same arithmetic, and cold by construction.
    fn embed_fallback(&mut self, m: &Matrix, targets: &[usize], group: &[usize]) {
        let s_n = self.n_shots;
        let Self { re, im, psi, .. } = self;
        let dim = re.len() / s_n;
        for &s in group {
            for (b, a) in psi.amps_mut().iter_mut().enumerate() {
                *a = Complex64::new(re[b * s_n + s], im[b * s_n + s]);
            }
            psi.apply_operator(m, targets);
            for b in 0..dim {
                let a = psi.amplitudes()[b];
                re[b * s_n + s] = a.re;
                im[b * s_n + s] = a.im;
            }
        }
    }

    /// A mixed-unitary channel: per-shot pick from the cumulative table
    /// (same comparison sequence as the scalar
    /// [`CompiledChannel::apply`]), then one grouped sweep per picked
    /// non-identity branch — identity picks never touch the arena.
    fn apply_mixed(&mut self, mix: &MixedChannel) {
        // Branch applies touch only their group's shots, so a deferred
        // scale (which covers every shot) cannot ride along.
        self.resolve_pending();
        let s_n = self.n_shots;
        for s in 0..s_n {
            let r: f64 = self.rngs[s].gen();
            let mut pick = mix.cum.len() - 1;
            for (k, &c) in mix.cum.iter().enumerate() {
                if r < c {
                    pick = k;
                    break;
                }
            }
            self.picks[s] = pick;
        }
        let mut group = std::mem::take(&mut self.group);
        for (k, branch) in mix.branches.iter().enumerate() {
            let BranchApply::Apply(u) = branch else {
                continue;
            };
            group.clear();
            group.extend((0..s_n).filter(|&s| self.picks[s] == k));
            if !group.is_empty() {
                self.apply_operator_group(u, &mix.targets, &group);
            }
        }
        self.group = group;
    }

    /// A general channel: every shot's branch weights accumulate in
    /// strided passes over the block, then each shot draws and picks in
    /// the scalar order, and the picked branches apply in shot groups
    /// (K0 identity-skips masked out entirely) with grouped
    /// renormalization.
    fn apply_general(&mut self, gen: &GeneralChannel) {
        let s_n = self.n_shots;
        let n_k = gen.kraus.len();
        match &gen.scan {
            WeightScan::One { target, rows } => {
                // The scan reads every amplitude exactly once, so a
                // deferred scale pass from the previous channel rides
                // along for free (rows scaled in place while L1-hot).
                let lanes = self.lanes;
                let pending = std::mem::replace(&mut self.pending, false);
                let Self {
                    weights,
                    re,
                    im,
                    inv,
                    ..
                } = self;
                let inv = pending.then_some(&inv[..]);
                kernel!(
                    lanes,
                    weights_1q_scan(weights, re, im, s_n, *target, rows, inv)
                );
            }
            WeightScan::Generic { all_mask, offs } => {
                self.resolve_pending();
                self.weights_generic(&gen.kraus, *all_mask, offs);
            }
        }
        // Totals sum in operator order (the scalar `weights.iter().sum()`),
        // one draw per shot, cumulative pick in the same order.
        for s in 0..s_n {
            let mut total = 0.0;
            for k in 0..n_k {
                total += self.weights[k * s_n + s];
            }
            assert!(total > 1e-12, "channel annihilated the state");
            let r: f64 = self.rngs[s].gen::<f64>() * total;
            let mut acc = 0.0;
            let mut pick = n_k - 1;
            for k in 0..n_k {
                acc += self.weights[k * s_n + s];
                if r < acc {
                    pick = k;
                    break;
                }
            }
            self.picks[s] = pick;
        }
        let mut group = std::mem::take(&mut self.group);
        for k in 0..n_k {
            if k == 0 && gen.k0_identity {
                continue;
            }
            group.clear();
            group.extend((0..s_n).filter(|&s| self.picks[s] == k));
            if !group.is_empty() {
                self.apply_operator_group(&gen.kraus[k], &gen.targets, &group);
                self.renormalize_group(&group);
            }
        }
        self.group = group;
    }

    /// Multi-qubit branch weights for all shots, mirroring
    /// [`super::branch_weight_generic`]'s MSB-first block scan per shot.
    fn weights_generic(&mut self, kraus: &[Matrix], all_mask: usize, offs: &[usize]) {
        let s_n = self.n_shots;
        let (re, im) = (&self.re, &self.im);
        let dim = re.len() / s_n;
        for (k, op) in kraus.iter().enumerate() {
            let w = &mut self.weights[k * s_n..(k + 1) * s_n];
            w.fill(0.0);
            for base in 0..dim {
                if base & all_mask != 0 {
                    continue;
                }
                for r in 0..offs.len() {
                    for (s, ws) in w.iter_mut().enumerate() {
                        let mut ar = 0.0;
                        let mut ai = 0.0;
                        for (c, &off) in offs.iter().enumerate() {
                            let e = op[(r, c)];
                            let idx = (base + off) * s_n + s;
                            ar += e.re * re[idx] - e.im * im[idx];
                            ai += e.re * im[idx] + e.im * re[idx];
                        }
                        *ws += ar * ar + ai * ai;
                    }
                }
            }
        }
    }

    /// Renormalizes the listed shots: per shot, the squared norm
    /// accumulates over amplitudes in ascending order, then one scale
    /// pass — exactly [`StateVector::renormalize`], except the scale
    /// pass is *deferred*: the per-shot reciprocals are recorded in
    /// `inv` (1.0 for untouched shots, and `a * 1.0 == a` bit for bit)
    /// and fused into the next full sweep over the arena. Branch groups
    /// within one channel are disjoint, so later groups' masked applies
    /// and norm scans never read a shot with an outstanding reciprocal.
    fn renormalize_group(&mut self, group: &[usize]) {
        let s_n = self.n_shots;
        let lanes = self.lanes;
        let all = group.len() == s_n;
        for &s in group {
            self.norms[s] = 0.0;
        }
        if all {
            kernel!(
                lanes,
                norm_acc_all(&mut self.norms, &self.re, &self.im, s_n)
            );
        } else {
            for (row_re, row_im) in self.re.chunks_exact(s_n).zip(self.im.chunks_exact(s_n)) {
                for &s in group {
                    self.norms[s] += row_re[s] * row_re[s] + row_im[s] * row_im[s];
                }
            }
        }
        if !self.pending {
            self.inv.fill(1.0);
            self.pending = true;
        }
        for &s in group {
            let norm = self.norms[s].sqrt();
            assert!(norm > 1e-300, "cannot renormalize a zero state");
            self.inv[s] = 1.0 / norm;
        }
    }

    /// Per-shot expectation values of a diagonal observable from its
    /// tabulated per-basis values: each shot sums
    /// `amps[b].norm_sqr() * diag[b]` over ascending `b`, the scalar
    /// engine's exact reduction.
    pub fn diagonal_expectations(&self, diag: &[f64]) -> Vec<f64> {
        let s_n = self.n_shots;
        let mut out = vec![0.0; s_n];
        kernel!(
            self.lanes,
            diag_expect_all(&mut out, &self.re, &self.im, s_n, diag)
        );
        out
    }

    /// Expectation value of one resident shot against an arbitrary
    /// observable: the shot is extracted into the scratch state and
    /// evaluated by [`StateVector::expectation`] — the scalar engine's
    /// own non-diagonal path.
    pub fn shot_expectation(&mut self, s: usize, observable: &PauliSum) -> f64 {
        let s_n = self.n_shots;
        let Self { re, im, psi, .. } = self;
        for (b, a) in psi.amps_mut().iter_mut().enumerate() {
            *a = Complex64::new(re[b * s_n + s], im[b * s_n + s]);
        }
        psi.expectation(observable)
    }

    /// One computational-basis outcome per resident shot, in shot
    /// order — per shot, [`crate::trajectory::draw_outcome`]'s exact
    /// arithmetic (norm-scaled draw, ascending cumulative walk) against
    /// that shot's own RNG.
    pub fn draw_outcomes(&mut self) -> Vec<usize> {
        let s_n = self.n_shots;
        let lanes = self.lanes;
        self.norms.fill(0.0);
        kernel!(
            lanes,
            norm_acc_all(&mut self.norms, &self.re, &self.im, s_n)
        );
        let Self {
            re,
            im,
            norms,
            rngs,
            ..
        } = self;
        let dim = re.len() / s_n;
        (0..s_n)
            .map(|s| {
                let target = rngs[s].gen::<f64>() * norms[s];
                let mut acc = 0.0;
                for b in 0..dim {
                    let idx = b * s_n + s;
                    acc += re[idx] * re[idx] + im[idx] * im[idx];
                    if target < acc {
                        return b;
                    }
                }
                dim - 1
            })
            .collect()
    }
}

/// The two rows of a pair as disjoint mutable `S`-slices of one plane.
#[inline(always)]
fn rows2_mut(plane: &mut [f64], s_n: usize, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(i < j);
    let (head, tail) = plane.split_at_mut(j * s_n);
    (&mut head[i * s_n..i * s_n + s_n], &mut tail[..s_n])
}

/// The 4x4 operator as a register-friendly array (same element values
/// the scalar kernel indexes per quad).
fn quad_matrix(m: &Matrix) -> [[Complex64; 4]; 4] {
    let mut mm = [[Complex64::ZERO; 4]; 4];
    for (r, row) in mm.iter_mut().enumerate() {
        for (c, e) in row.iter_mut().enumerate() {
            *e = m[(r, c)];
        }
    }
    mm
}
