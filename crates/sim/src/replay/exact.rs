//! Exact-path superoperator replay: the precompiled density-matrix tape.
//!
//! The exact density walk ([`crate::TrajectoryProgram::apply_exact`] over
//! a [`DensityMatrix`], which is what `Executor::run` drives) is the last
//! execution path that pays interpretation costs per dispatch: every run
//! re-derives each gate's matrix and diagonal, and every noise channel
//! goes through the generic Kraus embedding —
//! [`DensityMatrix::apply_kraus`] clones the full `rho` and performs two
//! embedded multiplies per Kraus operator, every time it fires.
//!
//! [`ExactReplayProgram`] compiles the recording once into a flat
//! superoperator tape, mirroring what [`super::ReplayProgram`] does for
//! trajectories:
//!
//! - maximal runs of consecutive diagonal gates fuse into a single
//!   elementwise sweep `rho[i][j] *= d(i) conj(d(j))` — one pass over
//!   the matrix regardless of run length, with per-gate factor tables so
//!   the per-entry multiply sequence is unchanged,
//! - dense gates and fixed unitaries carry their resolved matrices plus
//!   precomputed block offsets ([`DenseOp`]), applied left/right in one
//!   fused pass — no `Gate::matrix()` calls, no index re-derivation,
//! - channels are resolved at compile time ([`ExactChannel`]):
//!   single-Kraus channels apply in place like a unitary (no clone, no
//!   accumulator), one- and two-qubit multi-Kraus channels collapse
//!   into a sparse resolved superoperator (`4×4` / `16×16`, exact
//!   zeros dropped — structured channels like Pauli mixes and dampings
//!   are mostly zeros) swept over (row, col) block pairs in one
//!   strided pass, and wider multi-Kraus channels keep their Kraus
//!   matrices but work blockwise — `sum_k K B K†` per index block — in
//!   one pass over `rho` with no `dim²` clones,
//!
//! and [`ExactReplayEngine`] replays the tape over a reusable
//! [`ExactScratch`] arena, fanning row chunks out across rayon workers
//! once the matrix is large enough ([`kernels::PAR_QUBIT_THRESHOLD`]
//! total entries).
//!
//! # The parity contract
//!
//! The reference implementation stays exactly where it was: the
//! `ExactSink` schedule walk (`Executor::run`) driving
//! [`DensityMatrix`], equivalently
//! [`crate::TrajectoryProgram::apply_exact`] over the recorded program.
//! Against that reference the tape is
//!
//! - **bit-identical** wherever the arithmetic order is preserved:
//!   fused diagonal runs (same per-entry multiply sequence), dense
//!   gates/unitaries (the left-pass and right-pass block updates touch
//!   disjoint entries, so fusing them per aligned row chunk only
//!   reorders independent writes), and single-Kraus channels (the
//!   in-place fast path is the same two embedded multiplies without the
//!   redundant clone/accumulate),
//! - **≤ 1e-12 elementwise** for resolved multi-Kraus channels, where
//!   summing over Kraus terms per entry (instead of per full-matrix
//!   sweep) reassociates the additions,
//!
//! and parallel execution is deterministic: chunk boundaries are aligned
//! to every operator's block structure, so per-entry arithmetic is
//! independent of the worker count. Trace preservation and Hermiticity
//! are property-tested alongside the elementwise pins in
//! `crates/sim/tests/exact_replay_parity.rs`.
//!
//! Remaining headroom, deliberately not taken here: Hermitian-half
//! storage (sweep only `j >= i` and mirror) and fusing adjacent channels
//! that share an eigenbasis into one resolved superoperator.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Gate;
//! use hgp_sim::{DensityMatrix, ExactReplayEngine, ExactReplayProgram, TrajectoryProgram};
//!
//! let mut program = TrajectoryProgram::new(2);
//! program.push_gate(Gate::H, &[0]);
//! program.push_gate(Gate::CX, &[0, 1]);
//! let tape = ExactReplayProgram::compile(&program);
//! let rho = ExactReplayEngine::evolve(&tape);
//!
//! let mut reference = DensityMatrix::zero_state(2);
//! program.apply_exact(&mut reference);
//! assert_eq!(rho, reference); // unitary-only tape: bit-identical
//! ```

use std::sync::Arc;

use rayon::prelude::*;

use hgp_math::{Complex64, Matrix};
use hgp_obs::profile::{timed, NoProfile, ProfileSink, ReplayOpKind};

use crate::density::DensityMatrix;
use crate::kernels::{self, DiagOp};
use crate::trajectory::{ChannelOp, TrajectoryOp, TrajectoryProgram};

use super::ReplaySlot;

/// Minimum rows per parallel chunk (widened to each op's alignment).
const PAR_CHUNK_ROWS: usize = 64;

/// Whether a sweep over `entries` matrix elements is worth fanning out.
///
/// Uses the same total-amplitude threshold as the statevector kernels:
/// for a density matrix, `dim² >= 2^PAR_QUBIT_THRESHOLD` means 10+
/// qubits.
#[inline]
fn fan_out(entries: usize) -> bool {
    entries >= (1 << kernels::PAR_QUBIT_THRESHOLD) && rayon::current_num_threads() > 1
}

/// Chunk height for an op whose blocks must stay chunk-local: a power
/// of two at least `align_rows`.
#[inline]
fn chunk_height(align_rows: usize) -> usize {
    align_rows.max(PAR_CHUNK_ROWS)
}

/// A dense operator with its embedding resolved at compile time:
/// matrix, target bit mask, and the `2^k` block row offsets that
/// `DensityMatrix::apply_left`/`apply_right_dagger` re-derive per call.
#[derive(Debug, Clone)]
struct DenseOp {
    /// The resolved operator (`2^k` square). Behind an [`Arc`] so
    /// template binds — which clone the tape and substitute only
    /// parametric slots — share shape-constant matrices.
    matrix: Arc<Matrix>,
    /// OR of the target bit masks.
    all_mask: usize,
    /// `offs[r]` = index bits operator row `r` contributes
    /// (MSB-first target convention, `base | offs[r]` = absolute row).
    offs: Vec<usize>,
    /// Row-chunk alignment keeping every block chunk-local:
    /// `2^(max target bit + 1)`.
    align_rows: usize,
}

impl DenseOp {
    fn new(matrix: Arc<Matrix>, targets: &[usize]) -> Self {
        let k = targets.len();
        assert_eq!(matrix.rows(), 1 << k, "operator dimension mismatch");
        let masks: Vec<usize> = targets.iter().map(|&t| 1usize << t).collect();
        let all_mask: usize = masks.iter().sum();
        let offs: Vec<usize> = (0..1usize << k)
            .map(|r| {
                let mut off = 0usize;
                for (pos, &m) in masks.iter().enumerate() {
                    if (r >> (k - 1 - pos)) & 1 == 1 {
                        off |= m;
                    }
                }
                off
            })
            .collect();
        let align_rows = targets.iter().map(|&t| 2usize << t).max().unwrap_or(1);
        Self {
            matrix,
            all_mask,
            offs,
            align_rows,
        }
    }

    /// `rho -> M rho M†` over row-major `data`.
    ///
    /// Bit-identical to `apply_left` followed by `apply_right_dagger`:
    /// the left pass's (base, col) block updates and the right pass's
    /// row-local updates touch disjoint entry sets, so sweeping aligned
    /// row chunks (left then right per chunk) only reorders independent
    /// writes — for any chunking and any worker count.
    fn conjugate(&self, data: &mut [Complex64], dim: usize) {
        let height = chunk_height(self.align_rows);
        if fan_out(data.len()) && dim > height {
            data.par_chunks_mut(height * dim)
                .enumerate()
                .for_each(|(c, chunk)| self.conjugate_rows(chunk, c * height, dim));
        } else {
            self.conjugate_rows(data, 0, dim);
        }
    }

    fn conjugate_rows(&self, chunk: &mut [Complex64], row0: usize, dim: usize) {
        if self.offs.len() == 2 {
            return self.conjugate_rows_1q(chunk, row0, dim);
        }
        let m = self.matrix.as_ref();
        let rows = chunk.len() / dim;
        let mut vin = vec![Complex64::ZERO; self.offs.len()];
        // Left pass: rho -> M rho, per block row set, column by column.
        for local in 0..rows {
            let base = row0 + local;
            if base & self.all_mask != 0 {
                continue;
            }
            for col in 0..dim {
                for (r, &off) in self.offs.iter().enumerate() {
                    vin[r] = chunk[(base + off - row0) * dim + col];
                }
                for (r, &off) in self.offs.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &v) in vin.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = m[(r, c)].mul_add(v, acc);
                    }
                    chunk[(base + off - row0) * dim + col] = acc;
                }
            }
        }
        // Right pass: rho -> rho M†, row-local.
        for row in chunk.chunks_exact_mut(dim) {
            for base in 0..dim {
                if base & self.all_mask != 0 {
                    continue;
                }
                for (c, &off) in self.offs.iter().enumerate() {
                    vin[c] = row[base + off];
                }
                // (rho M†)[row, c'] = sum_c rho[row, c] conj(M[c', c])
                for (cp, &off) in self.offs.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &v) in vin.iter().enumerate() {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = m[(cp, c)].conj().mul_add(v, acc);
                    }
                    row[base + off] = acc;
                }
            }
        }
    }

    /// One-qubit specialization of [`Self::conjugate_rows`]: matrix
    /// entries (and their conjugates for the right pass) hoist out of
    /// the sweeps and the gather buffer disappears. Each entry's
    /// accumulation chain is exactly the generic
    /// `m[r][1].mul_add(v1, m[r][0].mul_add(v0, 0))` — bit parity
    /// holds.
    fn conjugate_rows_1q(&self, chunk: &mut [Complex64], row0: usize, dim: usize) {
        let m = self.matrix.as_ref();
        let bit = self.offs[1];
        let (m00, m01) = (m[(0, 0)], m[(0, 1)]);
        let (m10, m11) = (m[(1, 0)], m[(1, 1)]);
        let rows = chunk.len() / dim;
        // Left pass: rho -> M rho.
        for local in 0..rows {
            if (row0 + local) & bit != 0 {
                continue;
            }
            let lo = local * dim;
            let hi = lo + bit * dim;
            for col in 0..dim {
                let v0 = chunk[lo + col];
                let v1 = chunk[hi + col];
                // hgp-analysis: allow(d4) -- this fused chain IS the pinned
                // reference arithmetic the parity tests fix.
                chunk[lo + col] = m01.mul_add(v1, m00.mul_add(v0, Complex64::ZERO));
                // hgp-analysis: allow(d4) -- same pinned reference chain.
                chunk[hi + col] = m11.mul_add(v1, m10.mul_add(v0, Complex64::ZERO));
            }
        }
        // Right pass: rho -> rho M†, row-local.
        let (c00, c01) = (m00.conj(), m01.conj());
        let (c10, c11) = (m10.conj(), m11.conj());
        for row in chunk.chunks_exact_mut(dim) {
            for base in 0..dim {
                if base & bit != 0 {
                    continue;
                }
                let v0 = row[base];
                let v1 = row[base + bit];
                // hgp-analysis: allow(d4) -- this fused chain IS the pinned
                // reference arithmetic the parity tests fix.
                row[base] = c01.mul_add(v1, c00.mul_add(v0, Complex64::ZERO));
                // hgp-analysis: allow(d4) -- same pinned reference chain.
                row[base + bit] = c11.mul_add(v1, c10.mul_add(v0, Complex64::ZERO));
            }
        }
    }
}

/// Widest channel resolved into a [`SuperOp`]: at two targets the
/// superoperator is 16×16 (4 KiB dense, far less sparse) and already
/// far cheaper than per-Kraus block products; at three it would be
/// 64×64 per block and the blockwise Kraus form wins again.
const SUPEROP_MAX_TARGETS: usize = 2;

/// A small (≤ [`SUPEROP_MAX_TARGETS`]-qubit) multi-Kraus channel
/// resolved into its superoperator
/// `s[(a,b)][(r,c)] = sum_k K_k[a,r] conj(K_k[b,c])`, swept over
/// (row-block, col-block) index pairs in one strided pass — no
/// per-Kraus `rho` clone, and no per-Kraus arithmetic at all.
///
/// The superoperator is stored sparse (CSR over output entries):
/// structured channels are mostly exact zeros — damping/dephasing Kraus
/// sets are diagonal or single-entry, and Pauli-mix channels cancel
/// pairwise to IEEE-exact `0.0` (equal-magnitude subtraction is exact)
/// — so the sweep touches only surviving terms. Dropping a `0.0` term
/// can at most flip the sign of a zero, well inside the multi-Kraus
/// `1e-12` parity regime.
#[derive(Debug, Clone)]
struct SuperOp {
    /// OR of the target bit masks.
    all_mask: usize,
    /// Block row/col offsets (`2^k` of them, MSB-first convention).
    offs: Vec<usize>,
    /// Row-chunk alignment keeping every block chunk-local.
    align_rows: usize,
    /// CSR row starts into `idx`/`coef`: one row per output entry
    /// `a * block + b` of the `block² × block²` superoperator.
    starts: Vec<u32>,
    /// Input entry `r * block + c` of each surviving term.
    idx: Vec<u32>,
    coef: Vec<Complex64>,
}

impl SuperOp {
    fn compile(kraus: &[Matrix], targets: &[usize]) -> Self {
        let geom = DenseOp::new(Arc::new(kraus[0].clone()), targets);
        let block = geom.offs.len();
        let entries = block * block;
        let mut dense = vec![Complex64::ZERO; entries * entries];
        for k in kraus {
            for a in 0..block {
                for b in 0..block {
                    for r in 0..block {
                        for c in 0..block {
                            dense[(a * block + b) * entries + r * block + c] +=
                                k[(a, r)] * k[(b, c)].conj();
                        }
                    }
                }
            }
        }
        let mut starts = Vec::with_capacity(entries + 1);
        let mut idx = Vec::new();
        let mut coef = Vec::new();
        starts.push(0u32);
        for row in dense.chunks_exact(entries) {
            for (i, &z) in row.iter().enumerate() {
                if z.re != 0.0 || z.im != 0.0 {
                    idx.push(i as u32);
                    coef.push(z);
                }
            }
            starts.push(idx.len() as u32);
        }
        Self {
            all_mask: geom.all_mask,
            offs: geom.offs,
            align_rows: geom.align_rows,
            starts,
            idx,
            coef,
        }
    }

    fn apply(&self, data: &mut [Complex64], dim: usize) {
        let height = chunk_height(self.align_rows);
        if fan_out(data.len()) && dim > height {
            data.par_chunks_mut(height * dim)
                .enumerate()
                .for_each(|(c, chunk)| self.apply_rows(chunk, c * height, dim));
        } else {
            self.apply_rows(data, 0, dim);
        }
    }

    fn apply_rows(&self, chunk: &mut [Complex64], row0: usize, dim: usize) {
        let block = self.offs.len();
        let entries = block * block;
        debug_assert!(entries <= 16, "SuperOp is capped at 2 targets");
        let rows = chunk.len() / dim;
        // Stack blocks sized for the 2-target cap.
        let mut v = [Complex64::ZERO; 16];
        let mut out = [Complex64::ZERO; 16];
        for local in 0..rows {
            let bi = row0 + local;
            if bi & self.all_mask != 0 {
                continue;
            }
            for bj in 0..dim {
                if bj & self.all_mask != 0 {
                    continue;
                }
                for (r, &ro) in self.offs.iter().enumerate() {
                    let row = (bi + ro - row0) * dim + bj;
                    for (c, &co) in self.offs.iter().enumerate() {
                        v[r * block + c] = chunk[row + co];
                    }
                }
                for (o, slot) in out.iter_mut().enumerate().take(entries) {
                    let mut acc = Complex64::ZERO;
                    for t in self.starts[o] as usize..self.starts[o + 1] as usize {
                        // hgp-analysis: allow(d4) -- this fused chain IS the
                        // pinned reference arithmetic the parity tests fix.
                        acc = self.coef[t].mul_add(v[self.idx[t] as usize], acc);
                    }
                    *slot = acc;
                }
                for (r, &ro) in self.offs.iter().enumerate() {
                    let row = (bi + ro - row0) * dim + bj;
                    for (c, &co) in self.offs.iter().enumerate() {
                        chunk[row + co] = out[r * block + c];
                    }
                }
            }
        }
    }
}

/// A multi-qubit multi-Kraus channel: Kraus matrices precompiled
/// alongside the block offsets, applied blockwise — for each (row base,
/// col base) pair, load the `2^k × 2^k` sub-block `B` and replace it
/// with `sum_k K_k B K_k†` — in one pass over `rho`, no full clones.
#[derive(Debug, Clone)]
struct KrausBlocks {
    kraus: Vec<Matrix>,
    all_mask: usize,
    offs: Vec<usize>,
    align_rows: usize,
}

impl KrausBlocks {
    fn apply(&self, data: &mut [Complex64], dim: usize) {
        let height = chunk_height(self.align_rows);
        if fan_out(data.len()) && dim > height {
            data.par_chunks_mut(height * dim)
                .enumerate()
                .for_each(|(c, chunk)| self.apply_rows(chunk, c * height, dim));
        } else {
            self.apply_rows(data, 0, dim);
        }
    }

    fn apply_rows(&self, chunk: &mut [Complex64], row0: usize, dim: usize) {
        let block = self.offs.len();
        let rows = chunk.len() / dim;
        let mut b = vec![Complex64::ZERO; block * block];
        let mut kb = vec![Complex64::ZERO; block * block];
        let mut acc = vec![Complex64::ZERO; block * block];
        for local in 0..rows {
            let bi = row0 + local;
            if bi & self.all_mask != 0 {
                continue;
            }
            for bj in 0..dim {
                if bj & self.all_mask != 0 {
                    continue;
                }
                for (r, &ro) in self.offs.iter().enumerate() {
                    let row = (bi + ro - row0) * dim + bj;
                    for (c, &co) in self.offs.iter().enumerate() {
                        b[r * block + c] = chunk[row + co];
                    }
                }
                acc.fill(Complex64::ZERO);
                for k in &self.kraus {
                    // kb = K b
                    for a in 0..block {
                        for c in 0..block {
                            let mut s = Complex64::ZERO;
                            for r in 0..block {
                                // hgp-analysis: allow(d4) -- this fused chain IS
                                // the pinned reference arithmetic the parity
                                // tests fix.
                                s = k[(a, r)].mul_add(b[r * block + c], s);
                            }
                            kb[a * block + c] = s;
                        }
                    }
                    // acc += kb K†: acc[a, b'] += sum_c kb[a, c] conj(K[b', c])
                    for a in 0..block {
                        for bp in 0..block {
                            let mut s = acc[a * block + bp];
                            for c in 0..block {
                                // hgp-analysis: allow(d4) -- this fused chain IS
                                // the pinned reference arithmetic the parity
                                // tests fix.
                                s = k[(bp, c)].conj().mul_add(kb[a * block + c], s);
                            }
                            acc[a * block + bp] = s;
                        }
                    }
                }
                for (r, &ro) in self.offs.iter().enumerate() {
                    let row = (bi + ro - row0) * dim + bj;
                    for (c, &co) in self.offs.iter().enumerate() {
                        chunk[row + co] = acc[r * block + c];
                    }
                }
            }
        }
    }
}

/// A noise channel resolved into its cheapest exact form at compile
/// time.
#[derive(Debug, Clone)]
enum ExactChannel {
    /// Single-Kraus channel: applied in place like a unitary — no
    /// clone, no accumulator.
    Unitary(DenseOp),
    /// One- or two-qubit multi-Kraus channel as a sparse resolved
    /// superoperator.
    Super(SuperOp),
    /// Wider multi-Kraus channel, blockwise `sum_k K B K†`.
    Blocks(KrausBlocks),
}

impl ExactChannel {
    fn compile(channel: &ChannelOp, targets: &[usize]) -> Self {
        let kraus = channel.kraus();
        if kraus.len() == 1 {
            return ExactChannel::Unitary(DenseOp::new(Arc::new(kraus[0].clone()), targets));
        }
        if targets.len() <= SUPEROP_MAX_TARGETS {
            return ExactChannel::Super(SuperOp::compile(kraus, targets));
        }
        // Reuse DenseOp's offset derivation for the block geometry.
        let geom = DenseOp::new(Arc::new(kraus[0].clone()), targets);
        ExactChannel::Blocks(KrausBlocks {
            kraus: kraus.to_vec(),
            all_mask: geom.all_mask,
            offs: geom.offs,
            align_rows: geom.align_rows,
        })
    }

    fn apply(&self, data: &mut [Complex64], dim: usize) {
        match self {
            ExactChannel::Unitary(op) => op.conjugate(data, dim),
            ExactChannel::Super(s) => s.apply(data, dim),
            ExactChannel::Blocks(b) => b.apply(data, dim),
        }
    }

    /// The profiling bucket this channel shape is attributed to: the
    /// in-place single-Kraus path profiles like a mixed-unitary pick,
    /// resolved superoperators and blockwise Kraus sums like a general
    /// channel.
    fn profile_kind(&self) -> ReplayOpKind {
        match self {
            ExactChannel::Unitary(_) => ReplayOpKind::MixedChannel,
            ExactChannel::Super(_) | ExactChannel::Blocks(_) => ReplayOpKind::GeneralChannel,
        }
    }
}

/// One instruction of a compiled exact tape.
#[derive(Debug, Clone)]
enum ExactOp {
    /// A fused run of consecutive diagonal gates: one elementwise sweep
    /// over `diag[start..start + len]`.
    DiagRun { start: usize, len: usize },
    /// A dense operator conjugation `rho -> M rho M†`.
    Apply(DenseOp),
    /// A precompiled channel.
    Channel(usize),
}

/// A flat, precompiled superoperator tape for the exact density-matrix
/// path. See the module docs.
#[derive(Debug, Clone)]
pub struct ExactReplayProgram {
    n_qubits: usize,
    ops: Vec<ExactOp>,
    /// Arena of fused diagonal ops, referenced by [`ExactOp::DiagRun`].
    diag: Vec<DiagOp>,
    /// Resolved channels, shared (never parametric) across template
    /// binds.
    channels: Arc<Vec<ExactChannel>>,
    /// Longest fused diagonal run — sizes the factor-table scratch.
    max_run: usize,
}

impl ExactReplayProgram {
    /// Compiles a recorded trajectory program into an exact tape.
    pub fn compile(program: &TrajectoryProgram) -> Self {
        Self::compile_with_slots(program).0
    }

    /// [`ExactReplayProgram::compile`] returning, for each trajectory
    /// op, the tape slot it compiled into (in trajectory-op order) —
    /// the substitution map exact schedule templates are built from.
    pub fn compile_with_slots(program: &TrajectoryProgram) -> (Self, Vec<ReplaySlot>) {
        let mut ops: Vec<ExactOp> = Vec::new();
        let mut diag: Vec<DiagOp> = Vec::new();
        let mut channels: Vec<ExactChannel> = Vec::new();
        let mut slots: Vec<ReplaySlot> = Vec::with_capacity(program.ops().len());
        let mut run_open = false;
        for op in program.ops() {
            match op {
                TrajectoryOp::Gate { gate, qubits } => {
                    // Mirror DensityMatrix::apply_gate's dispatch rule:
                    // diagonal gates take the phase-only path, everything
                    // else the dense kernels.
                    if let Some(d) = DiagOp::from_gate(gate, qubits) {
                        slots.push(ReplaySlot::Diag(diag.len()));
                        if run_open {
                            match ops.last_mut() {
                                Some(ExactOp::DiagRun { len, .. }) => *len += 1,
                                _ => unreachable!("open run is the last op"),
                            }
                        } else {
                            ops.push(ExactOp::DiagRun {
                                start: diag.len(),
                                len: 1,
                            });
                            run_open = true;
                        }
                        diag.push(d);
                        continue;
                    }
                    run_open = false;
                    slots.push(ReplaySlot::Op(ops.len()));
                    ops.push(ExactOp::Apply(DenseOp::new(
                        Arc::new(gate.matrix().expect("trajectory programs are bound")),
                        qubits,
                    )));
                }
                TrajectoryOp::Unitary { matrix, targets } => {
                    run_open = false;
                    slots.push(ReplaySlot::Op(ops.len()));
                    ops.push(ExactOp::Apply(DenseOp::new(
                        Arc::new(matrix.clone()),
                        targets,
                    )));
                }
                TrajectoryOp::Channel { channel, targets } => {
                    run_open = false;
                    slots.push(ReplaySlot::Channel(channels.len()));
                    ops.push(ExactOp::Channel(channels.len()));
                    channels.push(ExactChannel::compile(channel, targets));
                }
            }
        }
        let max_run = ops
            .iter()
            .map(|op| match op {
                ExactOp::DiagRun { len, .. } => *len,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        (
            Self {
                n_qubits: program.n_qubits(),
                ops,
                diag,
                channels: Arc::new(channels),
                max_run,
            },
            slots,
        )
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Tape length (fused diagonal runs count as one op).
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of resolved channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of fused diagonal entries.
    pub fn n_diag_ops(&self) -> usize {
        self.diag.len()
    }

    /// Overwrites a diagonal slot with a re-bound diagonal op — the
    /// template substitution step for bound-angle `RZ`/`RZZ`/`CZ`
    /// entries. The new op must target the same qubits the recorded op
    /// targeted (templates guarantee this by construction).
    ///
    /// # Panics
    ///
    /// Panics if the slot does not point into the diagonal arena.
    pub fn substitute_diag(&mut self, slot: ReplaySlot, d: DiagOp) {
        match slot {
            ReplaySlot::Diag(i) => self.diag[i] = d,
            other => panic!("slot {other:?} is not a diagonal entry"),
        }
    }

    /// Overwrites a dense slot's matrix — the template substitution
    /// step for re-integrated pulse unitaries and re-bound dense gates.
    /// The precomputed block offsets are shape-constant and stay.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a dense op or the dimension disagrees
    /// with the recorded targets.
    pub fn substitute_unitary(&mut self, slot: ReplaySlot, m: &Matrix) {
        match slot {
            ReplaySlot::Op(i) => match &mut self.ops[i] {
                ExactOp::Apply(dense) => {
                    assert_eq!(m.rows(), dense.offs.len(), "dimension mismatch");
                    dense.matrix = Arc::new(m.clone());
                }
                other => panic!("slot points at {other:?}, not a dense op"),
            },
            other => panic!("slot {other:?} is not a dense op"),
        }
    }

    /// Replays the tape into the scratch state (resetting it to
    /// `|0...0><0...0|` first). The hot loop performs no per-op
    /// allocation beyond tiny per-chunk block buffers.
    pub fn run_into(&self, scratch: &mut ExactScratch) {
        self.run_into_profiled(scratch, &NoProfile);
    }

    /// [`ExactReplayProgram::run_into`] with an opt-in [`ProfileSink`]
    /// attributing each tape op's wall time to its [`ReplayOpKind`]
    /// (dense conjugations by arity, channels via
    /// `ExactChannel::profile_kind`; the exact path never
    /// renormalizes). With [`NoProfile`] this monomorphizes to the
    /// unprofiled loop exactly; any sink leaves the sweeps untouched,
    /// so the evolved state stays bit-identical.
    pub fn run_into_profiled<P: ProfileSink>(&self, scratch: &mut ExactScratch, sink: &P) {
        assert_eq!(scratch.rho.n_qubits(), self.n_qubits, "scratch width");
        scratch.rho.reset_zero();
        let dim = scratch.rho.dim();
        for op in &self.ops {
            match op {
                ExactOp::DiagRun { start, len } => timed(sink, ReplayOpKind::DiagRun, || {
                    apply_diag_run(
                        &self.diag[*start..*start + *len],
                        &mut scratch.factors,
                        scratch.rho.data_mut(),
                        dim,
                    )
                }),
                ExactOp::Apply(dense) => {
                    let kind = if dense.offs.len() == 2 {
                        ReplayOpKind::Dense1q
                    } else {
                        ReplayOpKind::Dense2q
                    };
                    timed(sink, kind, || dense.conjugate(scratch.rho.data_mut(), dim))
                }
                ExactOp::Channel(i) => {
                    let channel = &self.channels[*i];
                    timed(sink, channel.profile_kind(), || {
                        channel.apply(scratch.rho.data_mut(), dim)
                    })
                }
            }
        }
    }
}

/// Applies a fused diagonal run: per-gate factor tables, then one
/// elementwise sweep multiplying each entry by every gate's
/// `d(i) conj(d(j))` in op order — the same per-entry multiply sequence
/// as gate-at-a-time `apply_diagonal_unitary`, hence bit-identical.
fn apply_diag_run(
    run: &[DiagOp],
    factors: &mut Vec<Complex64>,
    data: &mut [Complex64],
    dim: usize,
) {
    factors.clear();
    for op in run {
        for i in 0..dim {
            factors.push(op.factor(i));
        }
    }
    let tables: &[Complex64] = factors;
    if fan_out(data.len()) && dim > PAR_CHUNK_ROWS {
        data.par_chunks_mut(PAR_CHUNK_ROWS * dim)
            .enumerate()
            .for_each(|(c, chunk)| diag_sweep(tables, chunk, c * PAR_CHUNK_ROWS, dim));
    } else {
        diag_sweep(tables, data, 0, dim);
    }
}

fn diag_sweep(tables: &[Complex64], chunk: &mut [Complex64], row0: usize, dim: usize) {
    for (local, row) in chunk.chunks_exact_mut(dim).enumerate() {
        let i = row0 + local;
        for (j, entry) in row.iter_mut().enumerate() {
            for tab in tables.chunks_exact(dim) {
                *entry *= tab[i] * tab[j].conj();
            }
        }
    }
}

/// Reusable replay arena: the density matrix plus the diagonal
/// factor-table scratch.
#[derive(Debug, Clone)]
pub struct ExactScratch {
    rho: DensityMatrix,
    factors: Vec<Complex64>,
}

impl ExactScratch {
    /// Allocates an arena sized for `program`.
    pub fn for_program(program: &ExactReplayProgram) -> Self {
        let dim = 1usize << program.n_qubits;
        Self {
            rho: DensityMatrix::zero_state(program.n_qubits),
            factors: Vec::with_capacity(program.max_run * dim),
        }
    }

    /// The current state (the result of the last replay).
    pub fn state(&self) -> &DensityMatrix {
        &self.rho
    }
}

/// Replays [`ExactReplayProgram`] tapes over a reusable arena.
///
/// Unlike the trajectory [`super::ReplayEngine`] there is no ensemble:
/// one replay produces the exact mixed state. The engine exists so
/// repeated dispatches (serving, optimization loops) reuse the `4^n`
/// allocation.
#[derive(Debug, Clone)]
pub struct ExactReplayEngine {
    scratch: ExactScratch,
}

impl ExactReplayEngine {
    /// Allocates an engine sized for `program`.
    pub fn for_program(program: &ExactReplayProgram) -> Self {
        Self {
            scratch: ExactScratch::for_program(program),
        }
    }

    /// Replays the tape from `|0...0><0...0|` and returns the resulting
    /// state (borrowed from the arena).
    pub fn run(&mut self, program: &ExactReplayProgram) -> &DensityMatrix {
        program.run_into(&mut self.scratch);
        self.scratch.state()
    }

    /// [`ExactReplayEngine::run`] with an opt-in [`ProfileSink`] (see
    /// [`ExactReplayProgram::run_into_profiled`]).
    pub fn run_profiled<P: ProfileSink>(
        &mut self,
        program: &ExactReplayProgram,
        sink: &P,
    ) -> &DensityMatrix {
        program.run_into_profiled(&mut self.scratch, sink);
        self.scratch.state()
    }

    /// Consumes the engine, yielding the arena's state.
    pub fn into_state(self) -> DensityMatrix {
        self.scratch.rho
    }

    /// One-shot convenience: compile-free replay to an owned state.
    pub fn evolve(program: &ExactReplayProgram) -> DensityMatrix {
        let mut engine = Self::for_program(program);
        program.run_into(&mut engine.scratch);
        engine.into_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::{Gate, Param};
    use hgp_math::c64;
    use hgp_math::pauli::{sigma_x, sigma_y, sigma_z};

    fn depolarizing_op(p: f64) -> ChannelOp {
        let kraus = vec![
            Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
            sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
            sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
        ];
        ChannelOp::general(kraus)
    }

    fn two_qubit_dephasing(p: f64) -> ChannelOp {
        let id = Matrix::identity(4).scale(c64((1.0 - p).sqrt(), 0.0));
        let zz = Matrix::from_vec(
            4,
            4,
            vec![
                c64(1.0, 0.0),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                c64(-1.0, 0.0),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                c64(-1.0, 0.0),
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                c64(1.0, 0.0),
            ],
        )
        .scale(c64(p.sqrt(), 0.0));
        ChannelOp::general(vec![id, zz])
    }

    fn reference(program: &TrajectoryProgram) -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(program.n_qubits());
        program.apply_exact(&mut rho);
        rho
    }

    fn assert_close(a: &DensityMatrix, b: &DensityMatrix, tol: f64) {
        let dim = a.dim();
        for i in 0..dim {
            for j in 0..dim {
                assert!(
                    (a.get(i, j) - b.get(i, j)).norm() <= tol,
                    "mismatch at ({i},{j}): {:?} vs {:?}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn unitary_only_tape_is_bit_identical() {
        let mut program = TrajectoryProgram::new(3);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::Rz(Param::bound(0.7)), &[0]);
        program.push_gate(Gate::Rzz(Param::bound(-0.4)), &[0, 2]);
        program.push_gate(Gate::CZ, &[1, 2]);
        program.push_gate(Gate::CX, &[0, 1]);
        program.push_unitary(Gate::Rx(Param::bound(1.1)).matrix().unwrap(), &[2]);
        let tape = ExactReplayProgram::compile(&program);
        assert_eq!(ExactReplayEngine::evolve(&tape), reference(&program));
    }

    #[test]
    fn single_kraus_channel_is_bit_identical() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_channel(
            ChannelOp::general(vec![Gate::CX.matrix().unwrap()]),
            &[0, 1],
        );
        let tape = ExactReplayProgram::compile(&program);
        assert_eq!(ExactReplayEngine::evolve(&tape), reference(&program));
    }

    #[test]
    fn multi_kraus_channels_match_reference_within_1e_12() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::CX, &[0, 1]);
        program.push_channel(depolarizing_op(0.2), &[0]);
        program.push_channel(two_qubit_dephasing(0.3), &[0, 1]);
        let tape = ExactReplayProgram::compile(&program);
        let rho = ExactReplayEngine::evolve(&tape);
        assert_close(&rho, &reference(&program), 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_qubit_channel_takes_the_kraus_block_path() {
        // Correlated ZZZ dephasing on three targets: beyond
        // SUPEROP_MAX_TARGETS, so this must exercise KrausBlocks.
        let p = 0.25f64;
        let mut zzz = Matrix::identity(8);
        for i in 0..8usize {
            if (i.count_ones() & 1) == 1 {
                zzz[(i, i)] = c64(-1.0, 0.0);
            }
        }
        let channel = ChannelOp::general(vec![
            Matrix::identity(8).scale(c64((1.0 - p).sqrt(), 0.0)),
            zzz.scale(c64(p.sqrt(), 0.0)),
        ]);
        let mut program = TrajectoryProgram::new(3);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::CX, &[0, 1]);
        program.push_gate(Gate::Rz(Param::bound(0.6)), &[2]);
        program.push_channel(channel, &[0, 1, 2]);
        let tape = ExactReplayProgram::compile(&program);
        assert!(matches!(
            tape.channels.as_slice(),
            [ExactChannel::Blocks(_)]
        ));
        let rho = ExactReplayEngine::evolve(&tape);
        assert_close(&rho, &reference(&program), 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diag_runs_fuse_and_stay_bit_identical() {
        let mut program = TrajectoryProgram::new(3);
        program.push_gate(Gate::H, &[0]);
        program.push_gate(Gate::H, &[1]);
        program.push_gate(Gate::H, &[2]);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            program.push_gate(Gate::Rzz(Param::bound(0.3 * (a + b) as f64)), &[a, b]);
        }
        program.push_gate(Gate::Rz(Param::bound(-0.9)), &[1]);
        let tape = ExactReplayProgram::compile(&program);
        // The cost layer fused into one run (after the three H ops).
        assert_eq!(tape.n_ops(), 4);
        assert_eq!(tape.n_diag_ops(), 4);
        assert_eq!(ExactReplayEngine::evolve(&tape), reference(&program));
    }

    #[test]
    fn engine_reuse_resets_the_arena() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::H, &[0]);
        program.push_channel(depolarizing_op(0.4), &[0]);
        let tape = ExactReplayProgram::compile(&program);
        let mut engine = ExactReplayEngine::for_program(&tape);
        let first = engine.run(&tape).clone();
        let second = engine.run(&tape).clone();
        assert_eq!(first, second);
    }

    #[test]
    fn substitution_rebinds_diag_and_dense_slots() {
        let mut program = TrajectoryProgram::new(2);
        program.push_gate(Gate::Rz(Param::bound(0.1)), &[0]);
        program.push_unitary(Gate::Rx(Param::bound(0.2)).matrix().unwrap(), &[1]);
        let (mut tape, slots) = ExactReplayProgram::compile_with_slots(&program);
        tape.substitute_diag(
            slots[0],
            DiagOp::from_gate(&Gate::Rz(Param::bound(1.5)), &[0]).unwrap(),
        );
        tape.substitute_unitary(slots[1], &Gate::Rx(Param::bound(-0.8)).matrix().unwrap());

        let mut rebound = TrajectoryProgram::new(2);
        rebound.push_gate(Gate::Rz(Param::bound(1.5)), &[0]);
        rebound.push_unitary(Gate::Rx(Param::bound(-0.8)).matrix().unwrap(), &[1]);
        assert_eq!(ExactReplayEngine::evolve(&tape), reference(&rebound));
    }
}
