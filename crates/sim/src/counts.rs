//! Measurement outcome multisets.
//!
//! A [`Counts`] value is what a quantum backend returns from repeated
//! measurement: a map from observed bitstrings to occurrence counts. The
//! mitigation crate consumes and produces these.

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Histogram of measured bitstrings.
///
/// Keys are basis-state indices (qubit 0 = least-significant bit).
///
/// ```
/// use hgp_sim::Counts;
/// let mut counts = Counts::new(2);
/// counts.record(0b11, 60);
/// counts.record(0b00, 40);
/// assert_eq!(counts.total(), 100);
/// assert!((counts.frequency(0b11) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counts {
    n_qubits: usize,
    counts: BTreeMap<usize, u64>,
}

impl Counts {
    /// An empty histogram over `n_qubits`-bit strings.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            counts: BTreeMap::new(),
        }
    }

    /// Samples `shots` outcomes from an explicit probability vector.
    ///
    /// Uses a Walker/Vose alias table: `O(2^n)` setup, then **O(1) per
    /// shot** (one RNG draw, one comparison) instead of the historical
    /// `O(n)` CDF binary search — the serve layer's sampling hot path.
    /// The old CDF path is kept as
    /// [`Counts::sample_from_probabilities_reference`] (mirroring
    /// `hgp_sim::kernels::reference`) and pinned to this one by
    /// statistical parity tests; the two draw different (equally
    /// deterministic) streams from the same RNG.
    ///
    /// Quasi-probability inputs are *sanitized*, not asserted on:
    /// negative entries (round-off from mitigation pipelines) and
    /// non-finite entries are clamped to zero, and the vector is
    /// renormalized by the clamped sum — readout-corrupted or ZNE-folded
    /// vectors legitimately drift away from unit sum at 20+ qubits, and
    /// a drifted vector must degrade a sample, never kill the sampling
    /// thread. A fully degenerate vector (every entry clamped away)
    /// falls back to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n_qubits`.
    pub fn sample_from_probabilities<R: Rng + ?Sized>(
        probs: &[f64],
        shots: usize,
        n_qubits: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(probs.len(), 1 << n_qubits, "probability vector length");
        let m = probs.len();
        let clamp = |p: f64| if p.is_finite() { p.max(0.0) } else { 0.0 };
        let clamped_sum: f64 = probs.iter().map(|&p| clamp(p)).sum();
        // Vose's construction: scale weights to mean 1, split into
        // under-/over-full columns, and pair each under-full column with
        // an over-full donor. An all-clamped vector would turn the scale
        // factor into 0/0 and poison the whole alias table with NaNs;
        // uniform weights are the only unbiased reading of "no valid
        // probability mass survived".
        let mut scaled: Vec<f64> = if clamped_sum > 0.0 {
            probs
                .iter()
                .map(|&p| clamp(p) * m as f64 / clamped_sum)
                .collect()
        } else {
            vec![1.0; m]
        };
        let mut alias = vec![0usize; m];
        let mut cutoff = vec![1.0f64; m];
        let mut small: Vec<usize> = Vec::with_capacity(m);
        let mut large: Vec<usize> = Vec::with_capacity(m);
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            cutoff[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (either stack) are numerically 1.0 columns.
        for &i in small.iter().chain(large.iter()) {
            cutoff[i] = 1.0;
        }
        let mut counts = Self::new(n_qubits);
        for _ in 0..shots {
            // One draw per shot: the integer part picks the column, the
            // fractional part flips the column/alias coin.
            let x = rng.gen::<f64>() * m as f64;
            let col = (x as usize).min(m - 1);
            let frac = x - col as f64;
            let idx = if frac < cutoff[col] { col } else { alias[col] };
            counts.record(idx, 1);
        }
        counts
    }

    /// The historical CDF-binary-search sampler, kept as the reference
    /// implementation for parity tests against the alias-method fast
    /// path (the same role `hgp_sim::kernels::reference` plays for the
    /// fused kernels). `O(n)` per shot; consumes one RNG draw per shot
    /// like the fast path, but maps draws to outcomes differently, so
    /// the two samplers produce different streams from the same seed.
    /// Inputs are sanitized exactly like the fast path: clamp, then
    /// renormalize, with a uniform fallback for degenerate vectors.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n_qubits`.
    pub fn sample_from_probabilities_reference<R: Rng + ?Sized>(
        probs: &[f64],
        shots: usize,
        n_qubits: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(probs.len(), 1 << n_qubits, "probability vector length");
        let clamp = |p: f64| if p.is_finite() { p.max(0.0) } else { 0.0 };
        // Cumulative distribution + binary search per shot.
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in probs {
            acc += clamp(p);
            cdf.push(acc);
        }
        if acc <= 0.0 {
            // Degenerate vector: same uniform fallback as the alias path.
            acc = probs.len() as f64;
            for (i, c) in cdf.iter_mut().enumerate() {
                *c = (i + 1) as f64;
            }
        }
        let mut counts = Self::new(n_qubits);
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * acc;
            let idx =
                match cdf.binary_search_by(|c| c.partial_cmp(&r).expect("finite probabilities")) {
                    Ok(i) | Err(i) => i.min(probs.len() - 1),
                };
            counts.record(idx, 1);
        }
        counts
    }

    /// Adds `n` observations of `bitstring`.
    ///
    /// # Panics
    ///
    /// Panics if `bitstring` does not fit in `n_qubits` bits.
    pub fn record(&mut self, bitstring: usize, n: u64) {
        assert!(
            bitstring < (1usize << self.n_qubits),
            "bitstring out of range"
        );
        *self.counts.entry(bitstring).or_insert(0) += n;
    }

    /// Number of qubits per bitstring.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count of a specific bitstring.
    pub fn count(&self, bitstring: usize) -> u64 {
        self.counts.get(&bitstring).copied().unwrap_or(0)
    }

    /// Relative frequency of a bitstring (0 when no shots are recorded).
    pub fn frequency(&self, bitstring: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bitstring) as f64 / total as f64
        }
    }

    /// Iterates over `(bitstring, count)` pairs in ascending bitstring
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Distinct observed bitstrings, ascending.
    pub fn observed(&self) -> Vec<usize> {
        self.counts.keys().copied().collect()
    }

    /// Converts to a dense probability vector of length `2^n`.
    pub fn to_probabilities(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut probs = vec![0.0; 1 << self.n_qubits];
        for (&b, &c) in &self.counts {
            probs[b] = c as f64 / total;
        }
        probs
    }

    /// Expectation of a per-bitstring cost function under the empirical
    /// distribution.
    pub fn expectation_of(&self, cost: impl Fn(usize) -> f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(&b, &c)| cost(b) * c as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Remaps each observed bitstring's bits through `qubit_map`, where the
    /// value at physical position `p` of the new string is bit
    /// `qubit_map[p]` of the old string. Used to undo transpiler layouts.
    ///
    /// # Panics
    ///
    /// Panics if `qubit_map.len() != n_qubits` or an index is out of range.
    pub fn remapped(&self, qubit_map: &[usize], new_n_qubits: usize) -> Counts {
        assert!(qubit_map.len() == new_n_qubits, "map length mismatch");
        let mut out = Counts::new(new_n_qubits);
        for (&b, &c) in &self.counts {
            let mut nb = 0usize;
            for (new_pos, &old_pos) in qubit_map.iter().enumerate() {
                assert!(old_pos < self.n_qubits, "map index out of range");
                if (b >> old_pos) & 1 == 1 {
                    nb |= 1 << new_pos;
                }
            }
            out.record(nb, c);
        }
        out
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counts over {} qubits ({} shots):",
            self.n_qubits,
            self.total()
        )?;
        for (&b, &c) in &self.counts {
            writeln!(f, "  {:0width$b}: {c}", b, width = self.n_qubits)?;
        }
        Ok(())
    }
}

impl FromIterator<(usize, u64)> for Counts {
    /// Collects `(bitstring, count)` pairs; the width is chosen as the
    /// smallest that fits all bitstrings.
    fn from_iter<I: IntoIterator<Item = (usize, u64)>>(iter: I) -> Self {
        let pairs: Vec<(usize, u64)> = iter.into_iter().collect();
        let max_bit = pairs.iter().map(|&(b, _)| b).max().unwrap_or(0);
        let n_qubits = (usize::BITS - max_bit.leading_zeros()).max(1) as usize;
        let mut counts = Counts::new(n_qubits);
        for (b, c) in pairs {
            counts.record(b, c);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101, 7);
        c.record(0b101, 3);
        c.record(0b000, 10);
        assert_eq!(c.count(0b101), 10);
        assert_eq!(c.total(), 20);
        assert_eq!(c.frequency(0b101), 0.5);
        assert_eq!(c.observed(), vec![0b000, 0b101]);
    }

    #[test]
    fn to_probabilities_normalizes() {
        let mut c = Counts::new(1);
        c.record(0, 30);
        c.record(1, 70);
        let p = c.to_probabilities();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn expectation_of_cost() {
        let mut c = Counts::new(2);
        c.record(0b00, 50);
        c.record(0b11, 50);
        // Cost = number of ones.
        let e = c.expectation_of(|b| b.count_ones() as f64);
        assert_eq!(e, 1.0);
    }

    #[test]
    fn sampling_is_reproducible_and_calibrated() {
        let probs = vec![0.1, 0.2, 0.3, 0.4];
        let mut rng = StdRng::seed_from_u64(11);
        let c = Counts::sample_from_probabilities(&probs, 40_000, 2, &mut rng);
        assert_eq!(c.total(), 40_000);
        for (b, &p) in probs.iter().enumerate() {
            assert!((c.frequency(b) - p).abs() < 0.01, "b={b}");
        }
        let mut rng2 = StdRng::seed_from_u64(11);
        let c2 = Counts::sample_from_probabilities(&probs, 40_000, 2, &mut rng2);
        assert_eq!(c, c2);
    }

    #[test]
    fn alias_sampler_matches_reference_distribution() {
        // The alias fast path and the CDF reference draw different
        // streams but must agree statistically — same parity contract as
        // kernels vs kernels::reference.
        let probs = vec![0.05, 0.0, 0.25, 0.1, 0.3, 0.15, 0.05, 0.1];
        let shots = 200_000;
        let mut rng_a = StdRng::seed_from_u64(3);
        let fast = Counts::sample_from_probabilities(&probs, shots, 3, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(3);
        let slow = Counts::sample_from_probabilities_reference(&probs, shots, 3, &mut rng_b);
        assert_eq!(fast.total(), slow.total());
        for (b, &p) in probs.iter().enumerate() {
            assert!(
                (fast.frequency(b) - slow.frequency(b)).abs() < 0.01,
                "b={b}: alias {} vs reference {}",
                fast.frequency(b),
                slow.frequency(b)
            );
            assert!((fast.frequency(b) - p).abs() < 0.01, "b={b}");
        }
        // Impossible outcomes stay impossible in both.
        assert_eq!(fast.count(1), 0);
        assert_eq!(slow.count(1), 0);
    }

    #[test]
    fn alias_sampler_handles_degenerate_distributions() {
        // A single spike: every shot must land on it.
        let mut probs = vec![0.0; 16];
        probs[11] = 1.0;
        let mut rng = StdRng::seed_from_u64(5);
        let c = Counts::sample_from_probabilities(&probs, 1000, 4, &mut rng);
        assert_eq!(c.count(11), 1000);
        // Slightly negative round-off entries are clamped like the
        // reference path clamps them.
        let probs = vec![0.5 + 1e-9, -1e-9, 0.25, 0.25];
        let mut rng = StdRng::seed_from_u64(6);
        let c = Counts::sample_from_probabilities(&probs, 50_000, 2, &mut rng);
        assert_eq!(c.count(1), 0);
        assert!((c.frequency(0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn all_clamped_vector_samples_uniformly_in_both_paths() {
        // Every entry negative (a maximally corrupted mitigation output):
        // the historical code built a 0/0 alias table (NaN cutoffs) and
        // the reference path collapsed onto state 0. Both must now fall
        // back to the uniform distribution instead.
        let probs = vec![-0.25; 8];
        let shots = 80_000;
        let mut rng = StdRng::seed_from_u64(17);
        let fast = Counts::sample_from_probabilities(&probs, shots, 3, &mut rng);
        let mut rng = StdRng::seed_from_u64(17);
        let slow = Counts::sample_from_probabilities_reference(&probs, shots, 3, &mut rng);
        assert_eq!(fast.total(), shots as u64);
        assert_eq!(slow.total(), shots as u64);
        for b in 0..8 {
            assert!((fast.frequency(b) - 0.125).abs() < 0.01, "fast b={b}");
            assert!((slow.frequency(b) - 0.125).abs() < 0.01, "slow b={b}");
        }
        // All-zero (e.g. an empty quasi-distribution) behaves the same.
        let mut rng = StdRng::seed_from_u64(18);
        let zero = Counts::sample_from_probabilities(&[0.0; 4], 40_000, 2, &mut rng);
        for b in 0..4 {
            assert!((zero.frequency(b) - 0.25).abs() < 0.02, "b={b}");
        }
    }

    #[test]
    fn near_degenerate_vectors_match_the_cdf_reference() {
        // A vector whose surviving mass is tiny (1e-12) after clamping:
        // renormalization must recover the conditional distribution, and
        // the alias fast path must agree with the CDF reference — the
        // parity contract on the degenerate edge.
        let probs = vec![3e-13, -0.4, 0.0, 1e-13, -1e-9, 0.0, 6e-13, 0.0];
        let shots = 200_000;
        let mut rng = StdRng::seed_from_u64(23);
        let fast = Counts::sample_from_probabilities(&probs, shots, 3, &mut rng);
        let mut rng = StdRng::seed_from_u64(23);
        let slow = Counts::sample_from_probabilities_reference(&probs, shots, 3, &mut rng);
        let expected = [0.3, 0.0, 0.0, 0.1, 0.0, 0.0, 0.6, 0.0];
        for (b, &p) in expected.iter().enumerate() {
            assert!((fast.frequency(b) - p).abs() < 0.01, "fast b={b}");
            assert!((slow.frequency(b) - p).abs() < 0.01, "slow b={b}");
        }
        // Clamped-away states stay impossible in both paths.
        for b in [1, 2, 4, 5, 7] {
            assert_eq!(fast.count(b), 0);
            assert_eq!(slow.count(b), 0);
        }
    }

    #[test]
    fn drifted_sums_are_renormalized_not_rejected() {
        // ZNE-folded / readout-corrupted vectors drift past the old 1e-6
        // assertion at scale; sampling must renormalize instead of
        // asserting.
        for drift in [0.98, 1.0 + 3e-4, 1.07] {
            let probs: Vec<f64> = [0.1, 0.2, 0.3, 0.4].iter().map(|p| p * drift).collect();
            let mut rng = StdRng::seed_from_u64(31);
            let c = Counts::sample_from_probabilities(&probs, 60_000, 2, &mut rng);
            assert_eq!(c.total(), 60_000);
            for (b, p) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
                assert!((c.frequency(b) - p).abs() < 0.01, "drift {drift}, b={b}");
            }
        }
        // Non-finite entries are clamped away rather than poisoning the
        // table.
        let probs = vec![f64::NAN, 0.5, f64::INFINITY, 0.5];
        let mut rng = StdRng::seed_from_u64(37);
        let c = Counts::sample_from_probabilities(&probs, 40_000, 2, &mut rng);
        assert_eq!(c.count(0) + c.count(2), 0);
        assert!((c.frequency(1) - 0.5).abs() < 0.01);
    }

    #[test]
    fn remap_permutes_bits() {
        let mut c = Counts::new(3);
        c.record(0b110, 5);
        // New bit p reads old bit map[p]; map = [2, 0, 1].
        let r = c.remapped(&[2, 0, 1], 3);
        // old 0b110: bit0=0, bit1=1, bit2=1 -> new bit0=old2=1, bit1=old0=0, bit2=old1=1 -> 0b101.
        assert_eq!(r.count(0b101), 5);
    }

    #[test]
    fn from_iterator_infers_width() {
        let c: Counts = vec![(0b100, 1u64), (0b001, 2u64)].into_iter().collect();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn empty_counts_edge_cases() {
        let c = Counts::new(2);
        assert_eq!(c.total(), 0);
        assert_eq!(c.frequency(0), 0.0);
        assert_eq!(c.expectation_of(|_| 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_bitstring_panics() {
        let mut c = Counts::new(2);
        c.record(0b100, 1);
    }
}
