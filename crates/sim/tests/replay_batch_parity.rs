//! Property suite pinning the batched SoA replay path to the scalar
//! [`ReplayEngine`] loop, bit for bit: for random programs weighted
//! toward the branch-divergent cases (general channels whose `K_0` is
//! *not* an identity multiple, so resident shots of one block pick
//! different Kraus branches and the lockstep sweeps must mask), random
//! ensemble seeds, odd and non-power-of-two ensemble sizes, and block
//! sizes that do not divide the ensemble (including single-shot
//! blocks), every per-trajectory expectation and every sampled count
//! must reproduce the scalar engine exactly — same seed stream, same
//! branch picks, same floating-point bits.
//!
//! The scalar engine is itself pinned to the reference
//! [`TrajectoryEngine`] by `replay_parity.rs`, so these tests
//! transitively anchor the batched path to the original per-shot
//! simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_circuit::{Gate, Param};
use hgp_math::pauli::{sigma_x, sigma_y, sigma_z, Pauli, PauliString, PauliSum};
use hgp_math::{c64, Matrix};
use hgp_sim::{ChannelOp, ReplayEngine, ReplayProgram, TrajectoryProgram};

fn depolarizing_op(p: f64) -> ChannelOp {
    let kraus = vec![
        Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
        sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
    ];
    let unitaries = vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
    let probs = vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0];
    ChannelOp::mixed_unitary(kraus, probs, unitaries)
}

/// Thermal-relaxation-shaped channel: `K_0` is diagonal but *not* an
/// identity multiple, so every shot pays the apply+renormalize path and
/// branch weights genuinely differ across the ensemble.
fn thermal_like_op(gamma: f64, p: f64) -> ChannelOp {
    let k0 = Matrix::from_rows(&[
        &[c64((1.0 - p).sqrt(), 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64(((1.0 - p) * (1.0 - gamma)).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(((1.0 - p) * gamma).sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    let k2 = Matrix::from_rows(&[
        &[c64(p.sqrt(), 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64(-(p.sqrt()), 0.0)],
    ]);
    ChannelOp::general(vec![k0, k1, k2])
}

fn amplitude_damping_op(gamma: f64) -> ChannelOp {
    let k0 = Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    ChannelOp::general(vec![k0, k1])
}

/// A random program drawn from `shape_seed`, weighted so roughly half
/// the ops are general channels with non-identity `K_0` at strong noise
/// — the divergence-heavy regime where resident shots split across
/// branch groups nearly every channel.
fn divergent_program(n: usize, n_ops: usize, shape_seed: u64) -> TrajectoryProgram {
    let mut rng = StdRng::seed_from_u64(shape_seed);
    let mut program = TrajectoryProgram::new(n);
    for _ in 0..n_ops {
        let q = rng.gen_range(0usize..n);
        let q2 = if n > 1 {
            let mut other = rng.gen_range(0usize..n);
            while other == q {
                other = rng.gen_range(0usize..n);
            }
            other
        } else {
            q
        };
        let angle = rng.gen_range(-3.0f64..3.0);
        match rng.gen_range(0u64..8) {
            0 => {
                program.push_gate(Gate::H, &[q]);
            }
            1 => {
                program.push_gate(Gate::Rz(Param::bound(angle)), &[q]);
            }
            2 if n > 1 => {
                program.push_gate(Gate::CX, &[q, q2]);
            }
            3 => {
                program.push_unitary(Gate::Rx(Param::bound(angle)).matrix().unwrap(), &[q]);
            }
            4 => {
                program.push_channel(depolarizing_op(rng.gen_range(0.2f64..0.8)), &[q]);
            }
            _ => {
                // Strong decay/dephasing: branch weights spread far from
                // the K0-dominant regime.
                if rng.gen::<bool>() {
                    program.push_channel(thermal_like_op(rng.gen_range(0.1f64..0.7), 0.2), &[q]);
                } else {
                    program.push_channel(amplitude_damping_op(rng.gen_range(0.1f64..0.8)), &[q]);
                }
            }
        }
    }
    program
}

fn diag_observable(n: usize) -> PauliSum {
    PauliSum::from_terms(vec![
        PauliString::new(n, vec![(0, Pauli::Z)], 1.0),
        PauliString::new(n, vec![(n - 1, Pauli::Z)], -0.5),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Divergence-heavy programs, arbitrary (odd, prime, non-dividing)
    /// block splits: per-trajectory expectations and the ensemble
    /// mean/error must match the scalar loop bitwise.
    #[test]
    fn batched_expectations_match_scalar_bitwise(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
        trajectories in 1usize..48,
        block in 1usize..64,
    ) {
        let program = divergent_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let obs = diag_observable(n);
        let scalar = ReplayEngine::new(trajectories, ensemble_seed);
        let batched = scalar.with_block_size(block);
        let a = scalar.expectations(&replay, &obs);
        let b = batched.expectations_batched(&replay, &obs);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let (m1, e1) = scalar.expectation_with_error(&replay, &obs);
        let (m2, e2) = batched.expectation_with_error_batched(&replay, &obs);
        prop_assert_eq!(m1.to_bits(), m2.to_bits());
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
    }

    /// Sampled counts — including a corruption hook that consumes the
    /// per-shot RNG tail — must match for every block split.
    #[test]
    fn batched_counts_match_scalar_bitwise(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
        shots in 1usize..80,
        block in 1usize..48,
    ) {
        let program = divergent_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let scalar = ReplayEngine::new(shots, ensemble_seed);
        let batched = scalar.with_block_size(block);
        prop_assert_eq!(
            scalar.sample_counts(&replay),
            batched.sample_counts_batched(&replay)
        );
        let corrupt = |bits: usize, rng: &mut StdRng| {
            if rng.gen::<f64>() < 0.2 { bits ^ 1 } else { bits }
        };
        prop_assert_eq!(
            scalar.sample_counts_with(&replay, corrupt),
            batched.sample_counts_with_batched(&replay, corrupt)
        );
    }

    /// Non-diagonal observables take the per-shot extraction fallback —
    /// the amplitudes handed to it must match the scalar state exactly
    /// where it matters: the expectations stay bit-identical.
    #[test]
    fn batched_non_diagonal_observables_match_bitwise(
        n in 2usize..4,
        n_ops in 1usize..12,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
        block in 1usize..24,
    ) {
        let program = divergent_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let obs = PauliSum::from_terms(vec![
            PauliString::new(n, vec![(0, Pauli::X)], 0.8),
            PauliString::new(n, vec![(1, Pauli::Y), (0, Pauli::Z)], -0.3),
        ]);
        let scalar = ReplayEngine::new(17, ensemble_seed);
        let a = scalar.expectations(&replay, &obs);
        let b = scalar
            .with_block_size(block)
            .expectations_batched(&replay, &obs);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Every block size from single-shot blocks up through one past the
/// ensemble, on an odd ensemble size, against one fixed
/// divergence-heavy program: the exhaustive small-scale version of the
/// block-split property.
#[test]
fn every_block_split_of_an_odd_ensemble_matches() {
    let n = 3;
    let shots = 29;
    let program = divergent_program(n, 14, 0xDECAF);
    let replay = ReplayProgram::compile(&program);
    let obs = diag_observable(n);
    let scalar = ReplayEngine::new(shots, 7);
    let reference = scalar.expectations(&replay, &obs);
    let ref_counts = scalar.sample_counts(&replay);
    for block in 1..=shots + 1 {
        let batched = scalar.with_block_size(block);
        let got = batched.expectations_batched(&replay, &obs);
        assert_eq!(reference.len(), got.len());
        for (x, y) in reference.iter().zip(got.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "block size {block}");
        }
        assert_eq!(
            ref_counts,
            batched.sample_counts_batched(&replay),
            "block size {block}"
        );
    }
}

/// A live profiling sink shared across the batched worker pool only
/// observes: per-shot expectations and sampled counts stay
/// bit-identical, and the whole ensemble's tape ops are attributed.
#[test]
fn profiled_batched_runs_are_bit_identical_and_attributed() {
    use hgp_sim::OpProfile;
    let n = 3;
    let program = divergent_program(n, 14, 0xC0FFEE);
    let replay = ReplayProgram::compile(&program);
    let obs = diag_observable(n);
    let engine = ReplayEngine::new(33, 11).with_block_size(8);
    let sink = OpProfile::new();

    let plain = engine.expectations_batched(&replay, &obs);
    let profiled = engine.expectations_batched_profiled(&replay, &obs, &sink);
    assert_eq!(plain.len(), profiled.len());
    for (x, y) in plain.iter().zip(profiled.iter()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    let corrupt = |bits: usize, rng: &mut StdRng| {
        if rng.gen::<f64>() < 0.2 {
            bits ^ 1
        } else {
            bits
        }
    };
    assert_eq!(
        engine.sample_counts_with_batched(&replay, corrupt),
        engine.sample_counts_with_batched_profiled(&replay, corrupt, &sink)
    );

    let snap = sink.snapshot();
    assert!(snap.total_calls() > 0, "ops were attributed");
    let (mean_plain, err_plain) = engine.expectation_with_error_batched(&replay, &obs);
    let (mean_prof, err_prof) =
        engine.expectation_with_error_batched_profiled(&replay, &obs, &sink);
    assert_eq!(mean_plain.to_bits(), mean_prof.to_bits());
    assert_eq!(err_plain.to_bits(), err_prof.to_bits());
}
