//! Property suite pinning the exact replay path to the reference
//! density walk: for random programs (diagonal runs, dense gates, fixed
//! unitaries, single- and multi-Kraus channels on one and two qubits),
//! the compiled [`ExactReplayProgram`] must reproduce the density
//! matrix [`TrajectoryProgram::apply_exact`] produces — bit for bit
//! where the tape preserves arithmetic order (fused diagonal runs,
//! unitary conjugations, single-Kraus channels), and within `1e-12`
//! elementwise where channel resolution reassociates the Kraus sum
//! (multi-Kraus superoperators). Physicality is pinned alongside:
//! unit trace and Hermiticity of every replayed state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_circuit::{Gate, Param};
use hgp_math::pauli::{sigma_x, sigma_y, sigma_z};
use hgp_math::{c64, Complex64, Matrix};
use hgp_sim::{ChannelOp, DensityMatrix, ExactReplayEngine, ExactReplayProgram, TrajectoryProgram};

fn depolarizing_op(p: f64) -> ChannelOp {
    let kraus = vec![
        Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
        sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
    ];
    let unitaries = vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
    let probs = vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0];
    ChannelOp::mixed_unitary(kraus, probs, unitaries)
}

fn amplitude_damping_op(gamma: f64) -> ChannelOp {
    let k0 = Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    ChannelOp::general(vec![k0, k1])
}

/// A single-Kraus "channel": a pure rotation wrapped as a general
/// channel, exercising the accumulate-free in-place fast path.
fn single_kraus_op(theta: f64) -> ChannelOp {
    ChannelOp::general(vec![Gate::Rx(Param::bound(theta)).matrix().unwrap()])
}

/// A correlated two-qubit dephasing channel: multi-Kraus on two
/// targets, exercising the precompiled Kraus-block path.
fn two_qubit_dephasing(p: f64) -> ChannelOp {
    let id = Matrix::identity(4).scale(c64((1.0 - p).sqrt(), 0.0));
    let mut zz = Matrix::identity(4);
    zz[(1, 1)] = c64(-1.0, 0.0);
    zz[(2, 2)] = c64(-1.0, 0.0);
    ChannelOp::general(vec![id, zz.scale(c64(p.sqrt(), 0.0))])
}

/// A random trajectory program drawn from `shape_seed`. With
/// `multi_kraus` set the mix includes one- and two-qubit multi-Kraus
/// channels (the `1e-12` regime); without it only order-preserving ops
/// are drawn (diagonal gates, dense unitaries, single-Kraus channels —
/// the bit-identical regime).
fn random_program(n: usize, n_ops: usize, shape_seed: u64, multi_kraus: bool) -> TrajectoryProgram {
    let mut rng = StdRng::seed_from_u64(shape_seed);
    let mut program = TrajectoryProgram::new(n);
    let cases = if multi_kraus { 10 } else { 7 };
    for _ in 0..n_ops {
        let q = rng.gen_range(0usize..n);
        let q2 = if n > 1 {
            let mut other = rng.gen_range(0usize..n);
            while other == q {
                other = rng.gen_range(0usize..n);
            }
            other
        } else {
            q
        };
        let angle = rng.gen_range(-3.0f64..3.0);
        match rng.gen_range(0u64..cases) {
            0 => {
                program.push_gate(Gate::H, &[q]);
            }
            1 => {
                program.push_gate(Gate::Rz(Param::bound(angle)), &[q]);
            }
            2 if n > 1 => {
                program.push_gate(Gate::Rzz(Param::bound(angle)), &[q, q2]);
            }
            3 if n > 1 => {
                program.push_gate(Gate::CX, &[q, q2]);
            }
            4 if n > 1 => {
                program.push_gate(Gate::CZ, &[q, q2]);
            }
            5 => {
                program.push_unitary(Gate::Rx(Param::bound(angle)).matrix().unwrap(), &[q]);
            }
            6 => {
                program.push_channel(single_kraus_op(angle), &[q]);
            }
            7 => {
                program.push_channel(depolarizing_op(rng.gen_range(0.0f64..0.6)), &[q]);
            }
            8 if n > 1 => {
                program.push_channel(two_qubit_dephasing(rng.gen_range(0.01f64..0.5)), &[q, q2]);
            }
            _ if multi_kraus => {
                program.push_channel(amplitude_damping_op(rng.gen_range(0.01f64..0.5)), &[q]);
            }
            // Unavailable arms (two-qubit cases at n = 1) fall back to
            // an order-preserving op in the bit-identical regime.
            _ => {
                program.push_gate(Gate::Rz(Param::bound(angle)), &[q]);
            }
        }
    }
    program
}

/// The reference: the interpreted density walk over the recorded
/// schedule.
fn reference_walk(program: &TrajectoryProgram) -> DensityMatrix {
    let mut rho = DensityMatrix::zero_state(program.n_qubits());
    program.apply_exact(&mut rho);
    rho
}

fn assert_close(rho: &DensityMatrix, reference: &DensityMatrix) -> Result<(), String> {
    let dim = reference.dim();
    for i in 0..dim {
        for j in 0..dim {
            let d = rho.get(i, j) - reference.get(i, j);
            prop_assert!(
                d.norm() <= 1e-12,
                "rho[{i},{j}] = {:?} vs reference {:?}",
                rho.get(i, j),
                reference.get(i, j)
            );
        }
    }
    Ok(())
}

fn assert_physical(rho: &DensityMatrix) -> Result<(), String> {
    prop_assert!((rho.trace() - 1.0).abs() <= 1e-9, "trace = {}", rho.trace());
    let dim = rho.dim();
    for i in 0..dim {
        for j in i..dim {
            let d = rho.get(i, j) - rho.get(j, i).conj();
            prop_assert!(d.norm() <= 1e-12, "hermiticity broken at ({i},{j}): {d:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_replay_matches_the_reference_walk(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
    ) {
        let program = random_program(n, n_ops, shape_seed, true);
        let tape = ExactReplayProgram::compile(&program);
        let rho = ExactReplayEngine::evolve(&tape);
        let reference = reference_walk(&program);
        assert_close(&rho, &reference)?;
        assert_physical(&rho)?;
    }

    #[test]
    fn order_preserving_programs_replay_bit_identically(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
    ) {
        // Diagonal runs, dense unitaries, and single-Kraus channels
        // keep the reference arithmetic order on the tape: every entry
        // must come out value-exact (`==` on Complex64, which only
        // forgives the sign of zero).
        let program = random_program(n, n_ops, shape_seed, false);
        let tape = ExactReplayProgram::compile(&program);
        let rho = ExactReplayEngine::evolve(&tape);
        let reference = reference_walk(&program);
        let dim = reference.dim();
        for i in 0..dim {
            for j in 0..dim {
                prop_assert_eq!(rho.get(i, j), reference.get(i, j));
            }
        }
    }

    #[test]
    fn engine_reuse_over_the_arena_matches_fresh_evolution(
        n in 1usize..4,
        n_ops_a in 1usize..12,
        n_ops_b in 1usize..12,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
    ) {
        // Replaying a second tape over a dirtied scratch arena must be
        // indistinguishable from a fresh engine: the reset is total.
        let tape_a = ExactReplayProgram::compile(&random_program(n, n_ops_a, seed_a, true));
        let tape_b = ExactReplayProgram::compile(&random_program(n, n_ops_b, seed_b, true));
        let mut engine = ExactReplayEngine::for_program(&tape_a);
        engine.run(&tape_a);
        let reused = engine.run(&tape_b).clone();
        prop_assert_eq!(reused, ExactReplayEngine::evolve(&tape_b));
    }

    #[test]
    fn replayed_expectations_match_the_reference_state(
        n in 1usize..4,
        n_ops in 1usize..12,
        shape_seed in 0u64..1_000_000,
    ) {
        // The strided probability/expectation sweeps compose with the
        // replayed state the same way they compose with the reference.
        let program = random_program(n, n_ops, shape_seed, true);
        let rho = ExactReplayEngine::evolve(&ExactReplayProgram::compile(&program));
        let reference = reference_walk(&program);
        let p_fast = rho.probabilities();
        let p_ref = reference.probabilities();
        for (a, b) in p_fast.iter().zip(p_ref.iter()) {
            prop_assert!((a - b).abs() <= 1e-12, "probability {a} vs {b}");
        }
        prop_assert!((rho.purity() - reference.purity()).abs() <= 1e-12);
    }
}

/// Non-proptest spot check: a deep two-qubit-channel-heavy program
/// stays physical and within tolerance (guards the Kraus-block path
/// with a deterministic, debuggable case).
#[test]
fn kraus_block_heavy_program_stays_pinned() {
    let n = 3;
    let mut program = TrajectoryProgram::new(n);
    for q in 0..n {
        program.push_gate(Gate::H, &[q]);
    }
    for step in 0..4 {
        let theta = 0.3 + 0.17 * step as f64;
        program.push_gate(Gate::Rzz(Param::bound(theta)), &[0, 1]);
        program.push_channel(two_qubit_dephasing(0.08), &[step % n, (step + 1) % n]);
        program.push_gate(Gate::Rz(Param::bound(-theta)), &[2]);
        program.push_channel(depolarizing_op(0.05), &[step % n]);
    }
    let rho = ExactReplayEngine::evolve(&ExactReplayProgram::compile(&program));
    let reference = reference_walk(&program);
    let dim = reference.dim();
    let mut worst: f64 = 0.0;
    for i in 0..dim {
        for j in 0..dim {
            worst = worst.max((rho.get(i, j) - reference.get(i, j)).norm());
        }
    }
    assert!(worst <= 1e-12, "worst elementwise deviation {worst}");
    assert!((rho.trace() - 1.0).abs() <= 1e-12);
    let _: Complex64 = rho.get(0, 0);
}

/// A live profiling sink only observes on the exact path too: every
/// density-matrix entry stays bit-identical with profiling attached,
/// and each tape op is attributed exactly once.
#[test]
fn profiled_exact_replay_is_bit_identical_and_attributed() {
    use hgp_sim::OpProfile;
    let program = random_program(3, 14, 0x0B5EC, true);
    let tape = ExactReplayProgram::compile(&program);
    let plain = ExactReplayEngine::evolve(&tape);
    let sink = OpProfile::new();
    let mut engine = ExactReplayEngine::for_program(&tape);
    let profiled = engine.run_profiled(&tape, &sink);
    let dim = plain.dim();
    for i in 0..dim {
        for j in 0..dim {
            let a = plain.get(i, j);
            let b = profiled.get(i, j);
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "rho[{i},{j}]");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "rho[{i},{j}]");
        }
    }
    let snap = sink.snapshot();
    assert_eq!(snap.total_calls(), tape.n_ops() as u64);
    assert_eq!(snap.calls[hgp_sim::ReplayOpKind::Renorm.index()], 0);
}
