//! Property suite pinning the replay path to the reference
//! [`TrajectoryEngine`], bit for bit: for random programs (diagonal
//! runs, dense gates, fixed unitaries, mixed-unitary and general
//! channels), random ensemble seeds, and random ensemble sizes, the
//! compiled [`ReplayProgram`] must reproduce every per-trajectory
//! expectation and every sampled count exactly — same seed stream, same
//! branch choices, same floating-point results.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgp_circuit::{Gate, Param};
use hgp_math::pauli::{sigma_x, sigma_y, sigma_z, Pauli, PauliString, PauliSum};
use hgp_math::{c64, Matrix};
use hgp_sim::{ChannelOp, ReplayEngine, ReplayProgram, TrajectoryEngine, TrajectoryProgram};

fn depolarizing_op(p: f64) -> ChannelOp {
    let kraus = vec![
        Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
        sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
    ];
    let unitaries = vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
    let probs = vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0];
    ChannelOp::mixed_unitary(kraus, probs, unitaries)
}

fn amplitude_damping_op(gamma: f64) -> ChannelOp {
    let k0 = Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    ChannelOp::general(vec![k0, k1])
}

/// A general channel whose `K_0` is an exact identity multiple — the
/// K0-skip path must agree between the two engines too.
fn identity_k0_op(p: f64) -> ChannelOp {
    let k0 = Matrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0));
    let k1 = sigma_x().scale(c64(p.sqrt(), 0.0));
    ChannelOp::general(vec![k0, k1])
}

/// A random trajectory program drawn from `shape_seed`: mixes fused
/// diagonal runs, dense gates, raw unitaries, and all three channel
/// sampling families.
fn random_program(n: usize, n_ops: usize, shape_seed: u64) -> TrajectoryProgram {
    let mut rng = StdRng::seed_from_u64(shape_seed);
    let mut program = TrajectoryProgram::new(n);
    for _ in 0..n_ops {
        let q = rng.gen_range(0usize..n);
        let q2 = if n > 1 {
            let mut other = rng.gen_range(0usize..n);
            while other == q {
                other = rng.gen_range(0usize..n);
            }
            other
        } else {
            q
        };
        let angle = rng.gen_range(-3.0f64..3.0);
        match rng.gen_range(0u64..9) {
            0 => {
                program.push_gate(Gate::H, &[q]);
            }
            1 => {
                program.push_gate(Gate::Rz(Param::bound(angle)), &[q]);
            }
            2 if n > 1 => {
                program.push_gate(Gate::Rzz(Param::bound(angle)), &[q, q2]);
            }
            3 if n > 1 => {
                program.push_gate(Gate::CX, &[q, q2]);
            }
            4 if n > 1 => {
                program.push_gate(Gate::CZ, &[q, q2]);
            }
            5 => {
                program.push_unitary(Gate::Rx(Param::bound(angle)).matrix().unwrap(), &[q]);
            }
            6 => {
                program.push_channel(depolarizing_op(rng.gen_range(0.0f64..0.6)), &[q]);
            }
            7 => {
                program.push_channel(amplitude_damping_op(rng.gen_range(0.01f64..0.5)), &[q]);
            }
            _ => {
                program.push_channel(identity_k0_op(rng.gen_range(0.01f64..0.4)), &[q]);
            }
        }
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_expectations_match_bitwise(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
        trajectories in 1usize..40,
    ) {
        let program = random_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let obs = PauliSum::from_terms(vec![
            PauliString::new(n, vec![(0, Pauli::Z)], 1.0),
            PauliString::new(n, vec![(n - 1, Pauli::Z)], -0.5),
        ]);
        let reference = TrajectoryEngine::new(trajectories, ensemble_seed);
        let fast = ReplayEngine::new(trajectories, ensemble_seed);
        let a = reference.expectations(&program, &obs);
        let b = fast.expectations(&replay, &obs);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let (m1, e1) = reference.expectation_with_error(&program, &obs);
        let (m2, e2) = fast.expectation_with_error(&replay, &obs);
        prop_assert_eq!(m1.to_bits(), m2.to_bits());
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
    }

    #[test]
    fn replay_counts_match_bitwise(
        n in 1usize..5,
        n_ops in 1usize..16,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
        shots in 1usize..96,
    ) {
        let program = random_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let reference = TrajectoryEngine::new(shots, ensemble_seed);
        let fast = ReplayEngine::new(shots, ensemble_seed);
        prop_assert_eq!(
            reference.sample_counts(&program),
            fast.sample_counts(&replay)
        );
        // Shot-level corruption consumes the same RNG tail.
        let corrupt = |bits: usize, rng: &mut StdRng| {
            if rng.gen::<f64>() < 0.1 { bits ^ 1 } else { bits }
        };
        prop_assert_eq!(
            reference.sample_counts_with(&program, corrupt),
            fast.sample_counts_with(&replay, corrupt)
        );
    }

    #[test]
    fn replay_non_diagonal_observables_match_bitwise(
        n in 2usize..4,
        n_ops in 1usize..12,
        shape_seed in 0u64..1_000_000,
        ensemble_seed in 0u64..1_000_000,
    ) {
        let program = random_program(n, n_ops, shape_seed);
        let replay = ReplayProgram::compile(&program);
        let obs = PauliSum::from_terms(vec![
            PauliString::new(n, vec![(0, Pauli::X)], 0.8),
            PauliString::new(n, vec![(1, Pauli::Y), (0, Pauli::Z)], -0.3),
        ]);
        let a = TrajectoryEngine::new(16, ensemble_seed).expectations(&program, &obs);
        let b = ReplayEngine::new(16, ensemble_seed).expectations(&replay, &obs);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// A live profiling sink only observes: the scalar replay loop's
/// amplitudes and RNG stream must stay bit-identical with profiling
/// attached, and every executed tape op must be attributed to a kind.
#[test]
fn profiled_scalar_replay_is_bit_identical_and_attributed() {
    use hgp_sim::{OpProfile, ReplayScratch};
    let program = random_program(3, 14, 0x0B5EC);
    let replay = ReplayProgram::compile(&program);
    let sink = OpProfile::new();
    let mut plain = ReplayScratch::for_program(&replay);
    let mut profiled = ReplayScratch::for_program(&replay);
    for seed in 0..24u64 {
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        replay.run_into(&mut plain, &mut rng_a);
        replay.run_into_profiled(&mut profiled, &mut rng_b, &sink);
        for (a, b) in plain
            .state()
            .amplitudes()
            .iter()
            .zip(profiled.state().amplitudes().iter())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "seed {seed}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "seed {seed}");
        }
        // The RNG stream position must agree too (same draw count).
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "seed {seed}");
    }
    // Every tape op is attributed once per run; renorm entries come on
    // top, one per applied (non-identity) general-channel branch.
    let snap = sink.snapshot();
    let renorms = snap.calls[hgp_sim::ReplayOpKind::Renorm.index()];
    assert_eq!(snap.total_calls(), 24 * replay.n_ops() as u64 + renorms);
    assert!(snap.total_calls() > 0, "ops were attributed");
}
