//! Readout (measurement assignment) error.
//!
//! Each qubit `q` has a 2x2 confusion matrix
//! `A_q = [[1-e01, e10], [e01, 1-e10]]` mapping true outcome probabilities
//! to observed ones. The full assignment matrix is the tensor product of
//! the per-qubit matrices; it is never materialized — confusion is applied
//! qubit-by-qubit in `O(n 2^n)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hgp_device::Backend;
use hgp_sim::Counts;

/// Per-qubit readout confusion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitReadout {
    /// Probability of reading 1 when the state was 0.
    pub p01: f64,
    /// Probability of reading 0 when the state was 1.
    pub p10: f64,
}

impl QubitReadout {
    /// A symmetric confusion with flip probability `e` in both directions.
    pub fn symmetric(e: f64) -> Self {
        Self { p01: e, p10: e }
    }
}

/// Readout model for a register of qubits.
///
/// ```
/// use hgp_noise::ReadoutModel;
/// let model = ReadoutModel::uniform(2, 0.1);
/// let observed = model.apply_to_probabilities(&[1.0, 0.0, 0.0, 0.0]);
/// // P(read 00 | true 00) = 0.81.
/// assert!((observed[0] - 0.81).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadoutModel {
    qubits: Vec<QubitReadout>,
}

impl ReadoutModel {
    /// Builds a model from explicit per-qubit parameters.
    pub fn new(qubits: Vec<QubitReadout>) -> Self {
        for (q, r) in qubits.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&r.p01) && (0.0..=1.0).contains(&r.p10),
                "qubit {q} has invalid flip probabilities"
            );
        }
        Self { qubits }
    }

    /// A model with the same symmetric error `e` on every qubit.
    pub fn uniform(n_qubits: usize, e: f64) -> Self {
        Self::new(vec![QubitReadout::symmetric(e); n_qubits])
    }

    /// Builds a model for the physical qubits selected by `layout` on a
    /// backend (logical qubit `i` reads `backend.qubit(layout[i])`).
    pub fn from_backend(backend: &Backend, layout: &[usize]) -> Self {
        Self::new(
            layout
                .iter()
                .map(|&p| QubitReadout::symmetric(backend.qubit(p).readout_error))
                .collect(),
        )
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Per-qubit parameters.
    pub fn qubit(&self, q: usize) -> QubitReadout {
        self.qubits[q]
    }

    /// Applies the confusion map to a true probability distribution,
    /// returning the observed distribution.
    ///
    /// The full `2^n x 2^n` assignment matrix is never formed: its
    /// tensor-product structure factors the action into `n` butterfly
    /// sweeps — `O(n 2^n)` total. Each per-qubit sweep walks the pair
    /// blocks directly (stride `2 bit`), touching every index exactly
    /// once with no masking branch; the historical masked sweep is kept
    /// as [`ReadoutModel::apply_to_probabilities_reference`] and parity
    /// tests pin the two bit-for-bit (the per-pair arithmetic is
    /// identical, only the iteration order of untouched indices
    /// differs).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n`.
    pub fn apply_to_probabilities(&self, probs: &[f64]) -> Vec<f64> {
        let n = self.qubits.len();
        assert_eq!(probs.len(), 1 << n, "distribution length mismatch");
        let mut p = probs.to_vec();
        for (q, r) in self.qubits.iter().enumerate() {
            let bit = 1usize << q;
            let (keep0, leak0) = (1.0 - r.p01, r.p01);
            let (keep1, leak1) = (1.0 - r.p10, r.p10);
            let mut block = 0;
            while block < p.len() {
                for i in block..block + bit {
                    let j = i + bit;
                    let (p0, p1) = (p[i], p[j]);
                    p[i] = keep0 * p0 + leak1 * p1;
                    p[j] = leak0 * p0 + keep1 * p1;
                }
                block += bit << 1;
            }
        }
        p
    }

    /// The historical masked per-qubit sweep, kept as the reference
    /// implementation for parity tests against the strided fast path
    /// (the `hgp_sim::kernels::reference` idiom).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^n`.
    pub fn apply_to_probabilities_reference(&self, probs: &[f64]) -> Vec<f64> {
        let n = self.qubits.len();
        assert_eq!(probs.len(), 1 << n, "distribution length mismatch");
        let mut p = probs.to_vec();
        for (q, r) in self.qubits.iter().enumerate() {
            let bit = 1usize << q;
            for i in 0..p.len() {
                if i & bit == 0 {
                    let j = i | bit;
                    let (p0, p1) = (p[i], p[j]);
                    p[i] = (1.0 - r.p01) * p0 + r.p10 * p1;
                    p[j] = r.p01 * p0 + (1.0 - r.p10) * p1;
                }
            }
        }
        p
    }

    /// Flips each bit of one measured bitstring independently according
    /// to the confusion probabilities — the shot-level noisy readout
    /// (one RNG draw per qubit). This is the hook trajectory sampling
    /// hands to `hgp_sim::TrajectoryEngine::sample_counts_with`.
    pub fn corrupt_bits<R: Rng + ?Sized>(&self, bits: usize, rng: &mut R) -> usize {
        let mut observed = bits;
        for (q, r) in self.qubits.iter().enumerate() {
            let flip_p = if (bits >> q) & 1 == 0 { r.p01 } else { r.p10 };
            if rng.gen::<f64>() < flip_p {
                observed ^= 1 << q;
            }
        }
        observed
    }

    /// Flips each bit of sampled counts independently according to the
    /// confusion probabilities (a shot-level noisy readout).
    pub fn corrupt_counts<R: Rng + ?Sized>(&self, counts: &Counts, rng: &mut R) -> Counts {
        let n = self.qubits.len();
        assert_eq!(counts.n_qubits(), n, "width mismatch");
        let mut out = Counts::new(n);
        for (bits, c) in counts.iter() {
            for _ in 0..c {
                out.record(self.corrupt_bits(bits, rng), 1);
            }
        }
        out
    }

    /// The full `2^n x 2^n` assignment matrix column for a given true
    /// state: `P(observed = row | true = col)`. Used by mitigation tests.
    pub fn assignment_column(&self, true_state: usize) -> Vec<f64> {
        let n = self.qubits.len();
        let mut col = vec![0.0; 1 << n];
        col[true_state] = 1.0;
        self.apply_to_probabilities(&col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_when_error_free() {
        let m = ReadoutModel::uniform(3, 0.0);
        let probs = vec![0.5, 0.0, 0.25, 0.0, 0.25, 0.0, 0.0, 0.0];
        assert_eq!(m.apply_to_probabilities(&probs), probs);
    }

    #[test]
    fn confusion_preserves_total_probability() {
        let m = ReadoutModel::new(vec![
            QubitReadout {
                p01: 0.02,
                p10: 0.07,
            },
            QubitReadout {
                p01: 0.05,
                p10: 0.01,
            },
        ]);
        let probs = vec![0.1, 0.4, 0.3, 0.2];
        let observed = m.apply_to_probabilities(&probs);
        let sum: f64 = observed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_flips_are_directional() {
        // Only 1 -> 0 errors: a true |1> can read 0, a true |0> cannot read 1.
        let m = ReadoutModel::new(vec![QubitReadout { p01: 0.0, p10: 0.2 }]);
        let from_one = m.apply_to_probabilities(&[0.0, 1.0]);
        assert!((from_one[0] - 0.2).abs() < 1e-12);
        let from_zero = m.apply_to_probabilities(&[1.0, 0.0]);
        assert_eq!(from_zero[1], 0.0);
    }

    #[test]
    fn assignment_column_is_a_distribution() {
        let m = ReadoutModel::uniform(3, 0.1);
        for s in 0..8 {
            let col = m.assignment_column(s);
            assert!((col.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Diagonal dominates for small error.
            assert!(col[s] > 0.7);
        }
    }

    #[test]
    fn corrupt_counts_statistics() {
        let m = ReadoutModel::uniform(1, 0.25);
        let mut truth = Counts::new(1);
        truth.record(0, 40_000);
        let mut rng = StdRng::seed_from_u64(17);
        let noisy = m.corrupt_counts(&truth, &mut rng);
        assert_eq!(noisy.total(), 40_000);
        assert!((noisy.frequency(1) - 0.25).abs() < 0.01);
    }

    #[test]
    fn strided_sweep_matches_reference_bit_for_bit() {
        // Same pair arithmetic, same pair order: parity must be exact.
        let m = ReadoutModel::new(vec![
            QubitReadout {
                p01: 0.02,
                p10: 0.07,
            },
            QubitReadout {
                p01: 0.05,
                p10: 0.01,
            },
            QubitReadout {
                p01: 0.11,
                p10: 0.003,
            },
            QubitReadout { p01: 0.0, p10: 0.3 },
        ]);
        let mut rng = StdRng::seed_from_u64(99);
        let mut probs: Vec<f64> = (0..16).map(|_| rng.gen::<f64>()).collect();
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        let fast = m.apply_to_probabilities(&probs);
        let reference = m.apply_to_probabilities_reference(&probs);
        for (a, b) in fast.iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupt_bits_matches_corrupt_counts_stream() {
        // corrupt_counts is a fold over corrupt_bits: same RNG stream,
        // same outcomes.
        let m = ReadoutModel::uniform(3, 0.2);
        let mut truth = Counts::new(3);
        truth.record(0b101, 500);
        truth.record(0b010, 300);
        let mut rng_a = StdRng::seed_from_u64(7);
        let by_counts = m.corrupt_counts(&truth, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut by_bits = Counts::new(3);
        for (bits, c) in truth.iter() {
            for _ in 0..c {
                by_bits.record(m.corrupt_bits(bits, &mut rng_b), 1);
            }
        }
        assert_eq!(by_counts, by_bits);
    }

    #[test]
    fn from_backend_reads_layout() {
        let b = Backend::ibmq_toronto();
        let m = ReadoutModel::from_backend(&b, &[3, 5]);
        assert_eq!(m.n_qubits(), 2);
        assert!((m.qubit(0).p01 - b.qubit(3).readout_error).abs() < 1e-15);
        assert!((m.qubit(1).p01 - b.qubit(5).readout_error).abs() < 1e-15);
    }
}
