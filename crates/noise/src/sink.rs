//! Where schedule walkers send their instruction streams.
//!
//! Both noisy schedule walkers in the workspace —
//! [`crate::NoisySimulator`] over logical circuits and
//! `hgp_core::Executor` over hybrid programs — walk their ASAP schedule
//! exactly once per invocation and emit gates, fixed unitaries, and
//! [`NoiseChannel`]s into a [`ScheduleSink`]. The two provided sinks are
//! the two noisy-execution semantics:
//!
//! - [`ExactSink`]: applies the stream to a [`SimBackend`] — channels as
//!   their full Kraus sets (`O(4^n)` on a density matrix),
//! - [`RecordSink`]: records the stream as a
//!   [`TrajectoryProgram`] — channels in sampling form
//!   ([`NoiseChannel::channel_op`]) for `O(2^n)` stochastic replay.
//!
//! One walker, one trait, two consumers: the exact and trajectory paths
//! cannot drift apart, and a change to channel dispatch happens in one
//! place.

use hgp_circuit::Gate;
use hgp_math::Matrix;
use hgp_sim::{SimBackend, TrajectoryProgram};

use crate::model::NoiseChannel;

/// A consumer of a noisy instruction stream in execution order.
pub trait ScheduleSink {
    /// A bound gate (fused kernel dispatch). `None` propagates unbound
    /// parameters to the walker.
    fn gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()>;

    /// A fixed unitary (pulse physics, frame drift, pulse blocks).
    fn unitary(&mut self, matrix: &Matrix, targets: &[usize]);

    /// A noise channel from the model.
    fn channel(&mut self, channel: NoiseChannel, targets: &[usize]);

    /// Announces that the *next* emitted gate/unitary is the applied
    /// operation of source program op `op_index` (idle decoherence,
    /// frame drift, and error channels arrive outside these markers).
    /// Schedule-template recorders use this to locate parametric slots
    /// in the recorded stream; plain sinks ignore it.
    fn begin_applied(&mut self, op_index: usize) {
        let _ = op_index;
    }
}

/// Applies the schedule to a [`SimBackend`] — the exact path.
pub struct ExactSink<B: SimBackend>(pub B);

impl<B: SimBackend> ScheduleSink for ExactSink<B> {
    fn gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        self.0.apply_gate(gate, qubits)
    }

    fn unitary(&mut self, matrix: &Matrix, targets: &[usize]) {
        self.0.apply_unitary(matrix, targets);
    }

    fn channel(&mut self, channel: NoiseChannel, targets: &[usize]) {
        self.0.apply_kraus(&channel.kraus_operators(), targets);
    }
}

/// Records the schedule as a [`TrajectoryProgram`] — the sampled path.
pub struct RecordSink(pub TrajectoryProgram);

impl ScheduleSink for RecordSink {
    fn gate(&mut self, gate: &Gate, qubits: &[usize]) -> Option<()> {
        gate.matrix()?;
        self.0.push_gate(*gate, qubits);
        Some(())
    }

    fn unitary(&mut self, matrix: &Matrix, targets: &[usize]) {
        self.0.push_unitary(matrix.clone(), targets);
    }

    fn channel(&mut self, channel: NoiseChannel, targets: &[usize]) {
        self.0.push_channel(channel.channel_op(), targets);
    }
}
