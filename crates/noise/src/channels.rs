//! Standard Kraus channels.
//!
//! Every constructor returns a set of Kraus operators satisfying the CPTP
//! completeness relation `sum_k K_k† K_k = I` (checked by tests and by the
//! [`is_cptp`] helper).

use hgp_math::pauli::{sigma_x, sigma_y, sigma_z};
use hgp_math::{c64, Matrix};

/// Amplitude damping with decay probability `gamma` (`|1> -> |0>`).
///
/// # Panics
///
/// Panics if `gamma` is outside `[0, 1]`.
pub fn amplitude_damping(gamma: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
    let k0 = Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(gamma.sqrt(), 0.0)],
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
    ]);
    let kraus = vec![k0, k1];
    debug_assert!(is_cptp(&kraus, 1e-9), "amplitude_damping({gamma})");
    kraus
}

/// Phase damping with dephasing probability `lambda`.
///
/// # Panics
///
/// Panics if `lambda` is outside `[0, 1]`.
pub fn phase_damping(lambda: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let k0 = Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64((1.0 - lambda).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64(lambda.sqrt(), 0.0)],
    ]);
    let kraus = vec![k0, k1];
    debug_assert!(is_cptp(&kraus, 1e-9), "phase_damping({lambda})");
    kraus
}

/// Single-qubit depolarizing channel with error probability `p`
/// (`rho -> (1-p) rho + p I/2`).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing(p: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let kraus = vec![
        Matrix::identity(2).scale(c64((1.0 - 3.0 * p / 4.0).sqrt(), 0.0)),
        sigma_x().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_y().scale(c64((p / 4.0).sqrt(), 0.0)),
        sigma_z().scale(c64((p / 4.0).sqrt(), 0.0)),
    ];
    debug_assert!(is_cptp(&kraus, 1e-9), "depolarizing({p})");
    kraus
}

/// Two-qubit depolarizing channel with error probability `p`
/// (`rho -> (1-p) rho + p I/4`), as 16 weighted Pauli products.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_2q(p: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let paulis = [Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
    let mut kraus = Vec::with_capacity(16);
    for (i, a) in paulis.iter().enumerate() {
        for (j, b) in paulis.iter().enumerate() {
            let weight = if i == 0 && j == 0 {
                (1.0 - 15.0 * p / 16.0).sqrt()
            } else {
                (p / 16.0).sqrt()
            };
            kraus.push(a.kron(b).scale(c64(weight, 0.0)));
        }
    }
    debug_assert!(is_cptp(&kraus, 1e-9), "depolarizing_2q({p})");
    kraus
}

/// Thermal relaxation over `duration_us` for a qubit with times `t1_us`
/// and `t2_us`: amplitude damping with `gamma = 1 - exp(-t/T1)` composed
/// with pure dephasing `lambda = 1 - exp(-t/Tphi)`, where
/// `1/Tphi = 1/T2 - 1/(2 T1)`.
///
/// Infinite T1/T2 (ideal backends) give an identity channel.
///
/// # Panics
///
/// Panics if times are non-positive, the duration is negative, or
/// `T2 > 2 T1` (unphysical).
pub fn thermal_relaxation(t1_us: f64, t2_us: f64, duration_us: f64) -> Vec<Matrix> {
    assert!(t1_us > 0.0 && t2_us > 0.0, "T1/T2 must be positive");
    assert!(duration_us >= 0.0, "duration must be non-negative");
    assert!(
        t2_us <= 2.0 * t1_us * (1.0 + 1e-9),
        "T2 must not exceed 2*T1"
    );
    if !t1_us.is_finite() && !t2_us.is_finite() {
        return vec![Matrix::identity(2)];
    }
    let gamma = if t1_us.is_finite() {
        1.0 - (-duration_us / t1_us).exp()
    } else {
        0.0
    };
    // Pure dephasing rate beyond what T1 causes.
    let inv_tphi = (1.0 / t2_us - 1.0 / (2.0 * t1_us)).max(0.0);
    let lambda = 1.0 - (-duration_us * inv_tphi).exp();
    let kraus = compose(&amplitude_damping(gamma), &phase_damping(lambda));
    debug_assert!(
        is_cptp(&kraus, 1e-9),
        "thermal_relaxation({t1_us}, {t2_us}, {duration_us})"
    );
    kraus
}

/// Composes two channels: the Kraus set of "apply `first`, then `second`".
pub fn compose(first: &[Matrix], second: &[Matrix]) -> Vec<Matrix> {
    let mut out = Vec::with_capacity(first.len() * second.len());
    for b in second {
        for a in first {
            out.push(b.matmul(a));
        }
    }
    out
}

/// Checks the completeness relation `sum_k K_k† K_k = I` within `tol`.
pub fn is_cptp(kraus: &[Matrix], tol: f64) -> bool {
    if kraus.is_empty() {
        return false;
    }
    let dim = kraus[0].rows();
    let mut acc = Matrix::zeros(dim, dim);
    for k in kraus {
        acc = &acc + &k.adjoint().matmul(k);
    }
    acc.approx_eq(&Matrix::identity(dim), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_sim::DensityMatrix;

    #[test]
    fn all_channels_are_cptp() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            assert!(is_cptp(&amplitude_damping(p), 1e-12));
            assert!(is_cptp(&phase_damping(p), 1e-12));
            assert!(is_cptp(&depolarizing(p), 1e-12));
            assert!(is_cptp(&depolarizing_2q(p), 1e-12));
        }
        assert!(is_cptp(&thermal_relaxation(100.0, 80.0, 0.5), 1e-12));
        assert!(is_cptp(
            &thermal_relaxation(f64::INFINITY, f64::INFINITY, 1.0),
            1e-12
        ));
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_unitary(&sigma_x(), &[0]); // |1>
        rho.apply_kraus(&amplitude_damping(0.3), &[0]);
        assert!((rho.get(1, 1).re - 0.7).abs() < 1e-12);
        assert!((rho.get(0, 0).re - 0.3).abs() < 1e-12);
    }

    #[test]
    fn phase_damping_preserves_populations() {
        let mut rho = DensityMatrix::plus_state(1);
        rho.apply_kraus(&phase_damping(0.5), &[0]);
        assert!((rho.get(0, 0).re - 0.5).abs() < 1e-12);
        // Coherence shrinks by sqrt(1 - lambda).
        assert!((rho.get(0, 1).re - 0.5 * 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_shrinks_bloch_vector() {
        let p = 0.2;
        let mut rho = DensityMatrix::plus_state(1);
        rho.apply_kraus(&depolarizing(p), &[0]);
        // <X> scales by (1 - p).
        assert!((2.0 * rho.get(0, 1).re - (1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn thermal_relaxation_limits() {
        // Zero duration: identity.
        let ch = thermal_relaxation(100.0, 80.0, 0.0);
        let mut rho = DensityMatrix::plus_state(1);
        let before = rho.clone();
        rho.apply_kraus(&ch, &[0]);
        assert!((rho.purity() - before.purity()).abs() < 1e-12);
        // Long duration: relax to |0>.
        let ch = thermal_relaxation(1.0, 1.0, 1e6);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_unitary(&sigma_x(), &[0]);
        rho.apply_kraus(&ch, &[0]);
        assert!((rho.get(0, 0).re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let ad = amplitude_damping(0.2);
        let pd = phase_damping(0.3);
        let composed = compose(&ad, &pd);
        assert!(is_cptp(&composed, 1e-12));
        let mut a = DensityMatrix::plus_state(1);
        a.apply_kraus(&ad, &[0]);
        a.apply_kraus(&pd, &[0]);
        let mut b = DensityMatrix::plus_state(1);
        b.apply_kraus(&composed, &[0]);
        for i in 0..2 {
            for j in 0..2 {
                assert!((a.get(i, j) - b.get(i, j)).norm() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "T2 must not exceed")]
    fn unphysical_t2_panics() {
        let _ = thermal_relaxation(10.0, 25.0, 1.0);
    }
}
