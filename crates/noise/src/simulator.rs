//! Noisy circuit execution on a density matrix.
//!
//! [`NoisySimulator`] executes a *logical* circuit (6-8 qubits for the
//! paper's benchmarks) whose qubits are laid out on *physical* qubits of a
//! backend. The density matrix stays `2^n`-dimensional in the logical
//! width; only noise parameters are fetched from the physical qubits.
//!
//! The schedule is ASAP: each gate starts when its last operand becomes
//! free; operands that wait accumulate idle thermal relaxation for the
//! gap. After each gate, its operands suffer (a) thermal relaxation for
//! the gate duration and (b) depolarizing noise at the calibrated error
//! rate, scaled by how many calibrated pulses the gate expands to.

use hgp_circuit::{Circuit, Instruction};
use hgp_device::{dt_to_us, Backend};
use hgp_sim::{DensityMatrix, SimBackend};

use crate::channels::{depolarizing, depolarizing_2q, thermal_relaxation};
use crate::durations::gate_duration_dt;

/// Executes circuits with calibration-derived noise.
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy)]
pub struct NoisySimulator<'a> {
    backend: &'a Backend,
}

impl<'a> NoisySimulator<'a> {
    /// Creates a simulator bound to a backend.
    pub fn new(backend: &'a Backend) -> Self {
        Self { backend }
    }

    /// The backend noise parameters are drawn from.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// Runs a bound logical circuit with `layout[i]` giving the physical
    /// qubit of logical qubit `i`. Returns the final noisy state.
    ///
    /// Measurement instructions are ignored here — apply a
    /// [`crate::ReadoutModel`] to the result's probabilities instead.
    ///
    /// Returns `None` if the circuit has unbound parameters.
    ///
    /// # Panics
    ///
    /// Panics if `layout.len() != circuit.n_qubits()`, a physical index is
    /// out of range, or a two-qubit gate spans a non-coupled physical pair.
    pub fn simulate(&self, circuit: &Circuit, layout: &[usize]) -> Option<DensityMatrix> {
        self.simulate_on(circuit, layout)
    }

    /// [`NoisySimulator::simulate`] generalized over the execution
    /// engine: any [`SimBackend`] can host the schedule. Backends without
    /// channel support (statevector) work only when every noise channel
    /// degenerates to nothing — i.e. on ideal backends — and panic
    /// otherwise; real noise needs [`DensityMatrix`].
    pub fn simulate_on<B: SimBackend>(&self, circuit: &Circuit, layout: &[usize]) -> Option<B> {
        assert_eq!(
            layout.len(),
            circuit.n_qubits(),
            "layout must cover every logical qubit"
        );
        for &p in layout {
            assert!(
                p < self.backend.n_qubits(),
                "physical qubit {p} out of range"
            );
        }
        let n = circuit.n_qubits();
        let mut state = B::init(n);
        let mut clock = vec![0u64; n];
        for inst in circuit.instructions() {
            match inst {
                Instruction::Gate { gate, qubits } => {
                    let phys: Vec<usize> = qubits.iter().map(|&q| layout[q]).collect();
                    let duration = gate_duration_dt(self.backend, gate, &phys);
                    // Align operands: laggards idle (and decohere) until the
                    // gate can start.
                    let start = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
                    for &q in qubits {
                        let gap = start - clock[q];
                        if gap > 0 {
                            self.relax_qubit(&mut state, q, layout[q], gap as u32);
                        }
                    }
                    // The ideal gate (through the fused kernel dispatch)...
                    state.apply_gate(gate, qubits)?;
                    // ...followed by its noise.
                    for &q in qubits {
                        self.relax_qubit(&mut state, q, layout[q], duration);
                    }
                    self.apply_gate_error(&mut state, gate.n_qubits(), qubits, &phys, duration);
                    for &q in qubits {
                        clock[q] = start + u64::from(duration);
                    }
                }
                Instruction::Barrier { qubits } => {
                    let sync = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
                    for &q in qubits {
                        let gap = sync - clock[q];
                        if gap > 0 {
                            self.relax_qubit(&mut state, q, layout[q], gap as u32);
                        }
                        clock[q] = sync;
                    }
                }
                Instruction::Measure { .. } => {}
            }
        }
        // All qubits are measured simultaneously at the end: idle the early
        // finishers up to the global end time.
        let end = clock.iter().copied().max().unwrap_or(0);
        for q in 0..n {
            let gap = end - clock[q];
            if gap > 0 {
                self.relax_qubit(&mut state, q, layout[q], gap as u32);
            }
        }
        Some(state)
    }

    /// Applies thermal relaxation to logical qubit `logical` (with physics
    /// from physical qubit `physical`) for `duration_dt`.
    pub fn relax_qubit<B: SimBackend>(
        &self,
        state: &mut B,
        logical: usize,
        physical: usize,
        duration_dt: u32,
    ) {
        if duration_dt == 0 {
            return;
        }
        let qp = self.backend.qubit(physical);
        if !qp.t1_us.is_finite() && !qp.t2_us.is_finite() {
            return;
        }
        let ch = thermal_relaxation(qp.t1_us, qp.t2_us, dt_to_us(duration_dt));
        state.apply_kraus(&ch, &[logical]);
    }

    /// Applies depolarizing gate error after a gate of `duration_dt` on
    /// the given logical/physical operands.
    ///
    /// Single-qubit error scales with pulse count (`duration / 160dt`);
    /// two-qubit error scales with CX-equivalents.
    pub fn apply_gate_error<B: SimBackend>(
        &self,
        state: &mut B,
        arity: usize,
        logical: &[usize],
        physical: &[usize],
        duration_dt: u32,
    ) {
        match arity {
            1 => {
                let qp = self.backend.qubit(physical[0]);
                let pulses =
                    f64::from(duration_dt) / f64::from(self.backend.pulse_1q_duration_dt());
                let p = (qp.x_error * pulses).clamp(0.0, 1.0);
                if p > 0.0 {
                    state.apply_kraus(&depolarizing(p), &[logical[0]]);
                }
            }
            2 => {
                let e = self.backend.edge(physical[0], physical[1]);
                let cx_dt = self.backend.cx_duration_dt(physical[0], physical[1]);
                let cx_equiv = f64::from(duration_dt) / f64::from(cx_dt);
                let p = (e.cx_error * cx_equiv).clamp(0.0, 1.0);
                if p > 0.0 {
                    state.apply_kraus(&depolarizing_2q(p), &[logical[0], logical[1]]);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Circuit;
    use hgp_sim::StateVector;

    #[test]
    fn ideal_backend_reproduces_pure_state() {
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2).rx(2, 0.7);
        let rho = sim.simulate(&qc, &[0, 1, 2]).unwrap();
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ideal_backend_runs_on_the_statevector_engine() {
        // On an ideal backend every channel degenerates, so the same
        // schedule runs on the pure-state engine and agrees with the
        // density-matrix engine through the SimBackend seam.
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.8).rx(2, 0.3);
        let psi: StateVector = sim.simulate_on(&qc, &[0, 1, 2]).unwrap();
        let rho = sim.simulate(&qc, &[0, 1, 2]).unwrap();
        for (p, q) in psi.probabilities().iter().zip(rho.probabilities()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_reduces_purity_and_fidelity() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let rho = sim.simulate(&qc, &[0, 1]).unwrap();
        let psi = StateVector::from_circuit(&qc).unwrap();
        let f = rho.fidelity_with_pure(&psi);
        assert!(f < 1.0, "noise should reduce fidelity");
        assert!(f > 0.9, "a single CX should not destroy the state (f={f})");
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_circuits_are_noisier() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut shallow = Circuit::new(2);
        shallow.h(0).cx(0, 1);
        let mut deep = Circuit::new(2);
        deep.h(0);
        for _ in 0..6 {
            deep.cx(0, 1);
        }
        let ps = sim.simulate(&shallow, &[0, 1]).unwrap().purity();
        let pd = sim.simulate(&deep, &[0, 1]).unwrap().purity();
        assert!(pd < ps, "deep {pd} should be below shallow {ps}");
    }

    #[test]
    fn virtual_gates_add_no_noise() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.x(0);
        for _ in 0..10 {
            b.rz(0, 0.1);
        }
        // Compare diagonal populations: RZ only shifts phases, and being
        // virtual it adds no decoherence time.
        let pa = sim.simulate(&a, &[0]).unwrap().purity();
        let pb = sim.simulate(&b, &[0]).unwrap().purity();
        assert!((pa - pb).abs() < 1e-12);
    }

    #[test]
    fn layout_selects_noise_parameters() {
        // Two layouts on qubits with different T1 give different purity
        // after an identical long idle-heavy circuit.
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(2);
        qc.h(0).h(1);
        for _ in 0..4 {
            qc.cx(0, 1);
        }
        let p01 = sim.simulate(&qc, &[0, 1]).unwrap().purity();
        let p12 = sim.simulate(&qc, &[1, 2]).unwrap().purity();
        assert!(
            (p01 - p12).abs() > 1e-6,
            "layouts should differ: {p01} vs {p12}"
        );
    }

    #[test]
    fn trace_is_preserved_through_noise() {
        let backend = Backend::ibmq_guadalupe();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.8).rx(0, 0.4).cx(1, 2);
        let rho = sim.simulate(&qc, &[1, 2, 3]).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "layout must cover")]
    fn short_layout_panics() {
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let qc = Circuit::new(3);
        let _ = sim.simulate(&qc, &[0, 1]);
    }
}
