//! Noisy circuit execution over the typed noise IR.
//!
//! [`NoisySimulator`] executes a *logical* circuit whose qubits are laid
//! out on *physical* qubits of a backend. Noise parameters come from a
//! [`NoiseModel`] built once per (backend, layout) — the per-gate Kraus
//! construction that used to be inlined here now lives in the IR.
//!
//! The schedule is ASAP: each gate starts when its last operand becomes
//! free; operands that wait accumulate idle thermal relaxation for the
//! gap. After each gate, its operands suffer (a) thermal relaxation for
//! the gate duration and (b) depolarizing noise at the calibrated error
//! rate, scaled by how many calibrated pulses the gate expands to.
//!
//! One schedule, two consumers:
//!
//! - **exact**: [`NoisySimulator::simulate_on`] applies every channel's
//!   full Kraus set to a [`DensityMatrix`] — `O(4^n)` per instruction,
//!   bit-identical to the pre-IR implementation,
//! - **sampled**: [`NoisySimulator::trajectory_program`] records the
//!   same schedule as a [`TrajectoryProgram`], which a
//!   [`hgp_sim::TrajectoryEngine`] replays as `O(2^n)` stochastic pure
//!   statevector trajectories — noisy simulation at statevector scale.

use hgp_circuit::{Circuit, Instruction};
use hgp_device::Backend;
use hgp_sim::{DensityMatrix, SimBackend, TrajectoryProgram};

use crate::model::NoiseModel;
use crate::sink::{ExactSink, RecordSink, ScheduleSink};

/// Executes circuits with calibration-derived noise.
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy)]
pub struct NoisySimulator<'a> {
    backend: &'a Backend,
}

/// Walks the ASAP schedule of `circuit` under `model`, emitting gates
/// and channels into `sink` ([`crate::sink`]) in execution order.
/// Returns `None` on the first unbound gate.
fn walk_schedule<S: ScheduleSink>(
    circuit: &Circuit,
    model: &NoiseModel,
    sink: &mut S,
) -> Option<()> {
    let n = circuit.n_qubits();
    assert_eq!(model.n_qubits(), n, "model width must match the circuit");
    let mut clock = vec![0u64; n];
    let relax = |sink: &mut S, q: usize, duration: u32| {
        if let Some(ch) = model.idle_channel(q, duration) {
            sink.channel(ch, &[q]);
        }
    };
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate { gate, qubits } => {
                let duration = model.gate_duration_dt(gate, qubits);
                // Align operands: laggards idle (and decohere) until the
                // gate can start.
                let start = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
                for &q in qubits {
                    let gap = start - clock[q];
                    if gap > 0 {
                        relax(sink, q, gap as u32);
                    }
                }
                // The ideal gate (through the fused kernel dispatch)...
                sink.gate(gate, qubits)?;
                // ...followed by its noise.
                for &q in qubits {
                    relax(sink, q, duration);
                }
                match gate.n_qubits() {
                    1 => {
                        if let Some(ch) = model.gate_error_1q(qubits[0], duration) {
                            sink.channel(ch, &[qubits[0]]);
                        }
                    }
                    2 => {
                        if let Some(ch) = model.gate_error_2q(qubits[0], qubits[1], duration) {
                            sink.channel(ch, &[qubits[0], qubits[1]]);
                        }
                    }
                    _ => {}
                }
                for &q in qubits {
                    clock[q] = start + u64::from(duration);
                }
            }
            Instruction::Barrier { qubits } => {
                let sync = qubits.iter().map(|&q| clock[q]).max().unwrap_or(0);
                for &q in qubits {
                    let gap = sync - clock[q];
                    if gap > 0 {
                        relax(sink, q, gap as u32);
                    }
                    clock[q] = sync;
                }
            }
            Instruction::Measure { .. } => {}
        }
    }
    // All qubits are measured simultaneously at the end: idle the early
    // finishers up to the global end time.
    let end = clock.iter().copied().max().unwrap_or(0);
    for (q, &busy_until) in clock.iter().enumerate() {
        let gap = end - busy_until;
        if gap > 0 {
            relax(sink, q, gap as u32);
        }
    }
    Some(())
}

impl<'a> NoisySimulator<'a> {
    /// Creates a simulator bound to a backend.
    pub fn new(backend: &'a Backend) -> Self {
        Self { backend }
    }

    /// The backend noise parameters are drawn from.
    pub fn backend(&self) -> &Backend {
        self.backend
    }

    /// The noise model of a layout — build it once and reuse it across
    /// [`NoisySimulator::simulate_with_model`] /
    /// [`NoisySimulator::trajectory_program_with_model`] calls.
    pub fn noise_model(&self, layout: &[usize]) -> NoiseModel {
        NoiseModel::from_backend(self.backend, layout)
    }

    /// Runs a bound logical circuit with `layout[i]` giving the physical
    /// qubit of logical qubit `i`. Returns the final noisy state.
    ///
    /// Measurement instructions are ignored here — apply a
    /// [`crate::ReadoutModel`] to the result's probabilities instead.
    ///
    /// Returns `None` if the circuit has unbound parameters.
    ///
    /// # Panics
    ///
    /// Panics if `layout.len() != circuit.n_qubits()`, a physical index is
    /// out of range, or a two-qubit gate spans a non-coupled physical pair.
    pub fn simulate(&self, circuit: &Circuit, layout: &[usize]) -> Option<DensityMatrix> {
        self.simulate_on(circuit, layout)
    }

    /// [`NoisySimulator::simulate`] generalized over the execution
    /// engine: any [`SimBackend`] can host the schedule. Backends without
    /// channel support (statevector) work only when every noise channel
    /// degenerates to nothing — i.e. on ideal backends — and panic
    /// otherwise; real noise needs [`DensityMatrix`] (exact) or the
    /// trajectory path (sampled).
    pub fn simulate_on<B: SimBackend>(&self, circuit: &Circuit, layout: &[usize]) -> Option<B> {
        self.check_layout(circuit, layout);
        self.simulate_with_model(circuit, &self.noise_model(layout))
    }

    /// [`NoisySimulator::simulate_on`] against a prebuilt (possibly
    /// rescaled) [`NoiseModel`] — the entry point for cached models and
    /// for zero-noise extrapolation's amplified copies.
    pub fn simulate_with_model<B: SimBackend>(
        &self,
        circuit: &Circuit,
        model: &NoiseModel,
    ) -> Option<B> {
        let mut sink = ExactSink(B::init(circuit.n_qubits()));
        walk_schedule(circuit, model, &mut sink)?;
        Some(sink.0)
    }

    /// Records the noisy schedule of a bound circuit as a
    /// [`TrajectoryProgram`] for stochastic statevector execution.
    ///
    /// Returns `None` if the circuit has unbound parameters.
    ///
    /// # Panics
    ///
    /// Same contract as [`NoisySimulator::simulate`].
    pub fn trajectory_program(
        &self,
        circuit: &Circuit,
        layout: &[usize],
    ) -> Option<TrajectoryProgram> {
        self.check_layout(circuit, layout);
        self.trajectory_program_with_model(circuit, &self.noise_model(layout))
    }

    /// [`NoisySimulator::trajectory_program`] against a prebuilt model.
    pub fn trajectory_program_with_model(
        &self,
        circuit: &Circuit,
        model: &NoiseModel,
    ) -> Option<TrajectoryProgram> {
        let mut sink = RecordSink(TrajectoryProgram::new(circuit.n_qubits()));
        walk_schedule(circuit, model, &mut sink)?;
        Some(sink.0)
    }

    fn check_layout(&self, circuit: &Circuit, layout: &[usize]) {
        assert_eq!(
            layout.len(),
            circuit.n_qubits(),
            "layout must cover every logical qubit"
        );
        for &p in layout {
            assert!(
                p < self.backend.n_qubits(),
                "physical qubit {p} out of range"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Circuit;
    use hgp_math::pauli::{Pauli, PauliString, PauliSum};
    use hgp_sim::{StateVector, TrajectoryEngine};

    #[test]
    fn ideal_backend_reproduces_pure_state() {
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2).rx(2, 0.7);
        let rho = sim.simulate(&qc, &[0, 1, 2]).unwrap();
        let psi = StateVector::from_circuit(&qc).unwrap();
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ideal_backend_runs_on_the_statevector_engine() {
        // On an ideal backend every channel degenerates, so the same
        // schedule runs on the pure-state engine and agrees with the
        // density-matrix engine through the SimBackend seam.
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.8).rx(2, 0.3);
        let psi: StateVector = sim.simulate_on(&qc, &[0, 1, 2]).unwrap();
        let rho = sim.simulate(&qc, &[0, 1, 2]).unwrap();
        for (p, q) in psi.probabilities().iter().zip(rho.probabilities()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_reduces_purity_and_fidelity() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let rho = sim.simulate(&qc, &[0, 1]).unwrap();
        let psi = StateVector::from_circuit(&qc).unwrap();
        let f = rho.fidelity_with_pure(&psi);
        assert!(f < 1.0, "noise should reduce fidelity");
        assert!(f > 0.9, "a single CX should not destroy the state (f={f})");
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_circuits_are_noisier() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut shallow = Circuit::new(2);
        shallow.h(0).cx(0, 1);
        let mut deep = Circuit::new(2);
        deep.h(0);
        for _ in 0..6 {
            deep.cx(0, 1);
        }
        let ps = sim.simulate(&shallow, &[0, 1]).unwrap().purity();
        let pd = sim.simulate(&deep, &[0, 1]).unwrap().purity();
        assert!(pd < ps, "deep {pd} should be below shallow {ps}");
    }

    #[test]
    fn virtual_gates_add_no_noise() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.x(0);
        for _ in 0..10 {
            b.rz(0, 0.1);
        }
        // Compare diagonal populations: RZ only shifts phases, and being
        // virtual it adds no decoherence time.
        let pa = sim.simulate(&a, &[0]).unwrap().purity();
        let pb = sim.simulate(&b, &[0]).unwrap().purity();
        assert!((pa - pb).abs() < 1e-12);
    }

    #[test]
    fn layout_selects_noise_parameters() {
        // Two layouts on qubits with different T1 give different purity
        // after an identical long idle-heavy circuit.
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(2);
        qc.h(0).h(1);
        for _ in 0..4 {
            qc.cx(0, 1);
        }
        let p01 = sim.simulate(&qc, &[0, 1]).unwrap().purity();
        let p12 = sim.simulate(&qc, &[1, 2]).unwrap().purity();
        assert!(
            (p01 - p12).abs() > 1e-6,
            "layouts should differ: {p01} vs {p12}"
        );
    }

    #[test]
    fn trace_is_preserved_through_noise() {
        let backend = Backend::ibmq_guadalupe();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.8).rx(0, 0.4).cx(1, 2);
        let rho = sim.simulate(&qc, &[1, 2, 3]).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_program_mirrors_the_exact_schedule() {
        // Applying the recorded program exactly reproduces simulate()
        // bit for bit: both paths walk one schedule.
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).rzz(1, 2, 0.8).rx(0, 0.4).cx(1, 2);
        let layout = [0, 1, 2];
        let by_simulate = sim.simulate(&qc, &layout).unwrap();
        let program = sim.trajectory_program(&qc, &layout).unwrap();
        assert!(program.n_channels() > 0, "noisy backend must emit channels");
        let mut by_program = DensityMatrix::init(3);
        program.apply_exact(&mut by_program);
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (by_simulate.get(i, j), by_program.get(i, j));
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "({i},{j})");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn trajectory_mean_converges_to_the_density_matrix() {
        // The tentpole contract: stochastic statevector trajectories
        // estimate the exact noisy expectation.
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rzz(0, 1, 0.7).rx(1, 0.4);
        let layout = [0, 1];
        let zz = PauliSum::from_terms(vec![PauliString::new(
            2,
            vec![(0, Pauli::Z), (1, Pauli::Z)],
            1.0,
        )]);
        let rho = sim.simulate(&qc, &layout).unwrap();
        let exact = SimBackend::expectation(&rho, &zz);
        let program = sim.trajectory_program(&qc, &layout).unwrap();
        let engine = TrajectoryEngine::new(4096, 17);
        let (mean, stderr) = engine.expectation_with_error(&program, &zz);
        assert!(
            (mean - exact).abs() < 4.0 * stderr.max(1e-3),
            "mean {mean} vs exact {exact} (stderr {stderr})"
        );
    }

    #[test]
    fn unbound_circuit_yields_no_trajectory_program() {
        let backend = Backend::ibmq_toronto();
        let sim = NoisySimulator::new(&backend);
        let mut qc = Circuit::new(1);
        let p = qc.add_param();
        qc.rx_param(0, p, 1.0);
        assert!(sim.trajectory_program(&qc, &[0]).is_none());
        assert!(sim.simulate(&qc, &[0]).is_none());
    }

    #[test]
    #[should_panic(expected = "layout must cover")]
    fn short_layout_panics() {
        let backend = Backend::ideal(3);
        let sim = NoisySimulator::new(&backend);
        let qc = Circuit::new(3);
        let _ = sim.simulate(&qc, &[0, 1]);
    }
}
