#![forbid(unsafe_code)]

//! The typed noise IR and calibration-derived noisy execution.
//!
//! Hardware noise enters the hybrid gate-pulse experiments in three ways,
//! all modeled here:
//!
//! - **Decoherence** ([`NoiseChannel::ThermalRelaxation`]): amplitude
//!   damping (T1) and dephasing (T2) scaled by instruction *duration* —
//!   the channel through which the pulse-level model's shorter schedules
//!   pay off,
//! - **Gate error** ([`NoiseChannel::Depolarizing`] /
//!   [`NoiseChannel::Depolarizing2q`]): depolarizing noise with the
//!   calibrated per-gate error rates (Table I),
//! - **Readout error** ([`readout::ReadoutModel`]): per-qubit assignment
//!   confusion applied to measurement distributions (exactly, via the
//!   `O(n 2^n)` tensor-structured sweep) or to individual shots
//!   ([`ReadoutModel::corrupt_bits`]) — the error that M3 mitigates.
//!
//! Noise is a *value* here, not code scattered through a simulator:
//!
//! - [`model::NoiseChannel`] names one channel and owns both of its
//!   applications — the exact Kraus set (density matrix) and the
//!   stochastic trajectory form ([`hgp_sim::ChannelOp`]). Raw Kraus
//!   constructors live in [`channels`] and are CPTP-validated in debug
//!   builds.
//! - [`model::NoiseModel`] is the compiled artifact: built once per
//!   ([`hgp_device::Backend`], layout), it caches every channel
//!   parameter (T1/T2, gate errors, durations, readout) and hands out
//!   channels per `(qubit, duration)`. [`NoiseModel::scaled`] amplifies
//!   it multiplicatively — zero-noise extrapolation folds the *model*
//!   instead of folding gates.
//! - [`NoisySimulator`] walks one ASAP schedule per circuit and feeds
//!   it to either consumer: exact `O(4^n)` density-matrix evolution
//!   ([`NoisySimulator::simulate`]), or a recorded
//!   [`hgp_sim::TrajectoryProgram`]
//!   ([`NoisySimulator::trajectory_program`]) that a
//!   [`hgp_sim::TrajectoryEngine`] replays as `O(2^n)` stochastic
//!   statevector trajectories — noisy simulation at statevector scale.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//! use hgp_device::Backend;
//! use hgp_noise::NoisySimulator;
//! use hgp_sim::TrajectoryEngine;
//!
//! let backend = Backend::ibmq_toronto();
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let sim = NoisySimulator::new(&backend);
//! // Exact: the O(4^n) density matrix.
//! let rho = sim.simulate(&bell, &[0, 1]).expect("bound circuit");
//! assert!(rho.purity() < 1.0);
//! assert!(rho.purity() > 0.9);
//! // Sampled: O(2^n) trajectories of the same schedule.
//! let program = sim.trajectory_program(&bell, &[0, 1]).expect("bound circuit");
//! let counts = TrajectoryEngine::new(256, 7).sample_counts(&program);
//! assert_eq!(counts.total(), 256);
//! ```

pub mod channels;
pub mod durations;
pub mod model;
pub mod readout;
pub mod simulator;
pub mod sink;

pub use model::{NoiseChannel, NoiseModel, PairNoise, QubitNoise};
pub use readout::ReadoutModel;
pub use simulator::NoisySimulator;
