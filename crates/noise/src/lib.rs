//! Noise channels and calibration-derived noise models.
//!
//! Hardware noise enters the hybrid gate-pulse experiments in three ways,
//! all modeled here:
//!
//! - **Decoherence** ([`channels::thermal_relaxation`]): amplitude damping
//!   (T1) and dephasing (T2) scaled by instruction *duration* — the channel
//!   through which the pulse-level model's shorter schedules pay off,
//! - **Gate error** ([`channels::depolarizing`]): depolarizing noise with
//!   the calibrated per-gate error rates (Table I),
//! - **Readout error** ([`readout::ReadoutModel`]): per-qubit assignment
//!   confusion applied to measurement distributions — the error that M3
//!   mitigates.
//!
//! [`NoisySimulator`] ties these to a [`hgp_device::Backend`] and executes
//! bound circuits on a density matrix with an ASAP schedule, applying idle
//! decoherence to waiting qubits.
//!
//! # Example
//!
//! ```
//! use hgp_circuit::Circuit;
//! use hgp_device::Backend;
//! use hgp_noise::NoisySimulator;
//!
//! let backend = Backend::ibmq_toronto();
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let sim = NoisySimulator::new(&backend);
//! let rho = sim.simulate(&bell, &[0, 1]).expect("bound circuit");
//! // Noise leaves the state close to, but not exactly, the Bell state.
//! assert!(rho.purity() < 1.0);
//! assert!(rho.purity() > 0.9);
//! ```

pub mod channels;
pub mod durations;
pub mod readout;
pub mod simulator;

pub use readout::ReadoutModel;
pub use simulator::NoisySimulator;
