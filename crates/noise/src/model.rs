//! The typed noise IR: [`NoiseChannel`] and [`NoiseModel`].
//!
//! Before this module, every noisy execution path hand-rolled its Kraus
//! lists inline: the simulator called the raw constructors in
//! [`crate::channels`] gate by gate, nothing could inspect or transform
//! the noise, and error mitigation had no handle to scale it. The IR
//! makes noise a *value*:
//!
//! - [`NoiseChannel`] names a channel by its physics (amplitude damping,
//!   thermal relaxation, depolarizing, ...) and owns both of its
//!   applications — the exact Kraus set
//!   ([`NoiseChannel::kraus_operators`], bit-identical to the historical
//!   inline construction) and the stochastic trajectory form
//!   ([`NoiseChannel::channel_op`]),
//! - [`NoiseModel`] is the compiled-shape artifact: built once from a
//!   [`Backend`] and a logical-to-physical layout, it caches every
//!   parameter channel construction needs (per-qubit T1/T2 and gate
//!   error, per-pair CX error and durations, readout confusion) and
//!   hands out channels per `(qubit, duration)` on demand. It also
//!   carries a *noise scale* ([`NoiseModel::scaled`]) — the handle zero
//!   noise extrapolation folds instead of folding gates.
//!
//! Channels constructed here are validated against the CPTP
//! completeness relation in debug builds ([`channels::is_cptp`]).

use std::collections::BTreeMap;

use hgp_circuit::Gate;
use hgp_device::{dt_to_us, Backend};
use hgp_math::pauli::{sigma_x, sigma_y, sigma_z};
use hgp_math::{c64, Matrix};
use hgp_sim::trajectory::ChannelOp;
use serde::{Deserialize, Serialize};

use crate::channels;
use crate::readout::{QubitReadout, ReadoutModel};

/// A named quantum noise channel — the unit of the noise IR.
///
/// Constructors stay dumb: a channel is pure data, and the expensive
/// matrix work happens in [`NoiseChannel::kraus_operators`] /
/// [`NoiseChannel::channel_op`] when an execution engine asks for it.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseChannel {
    /// `|1> -> |0>` decay with probability `gamma`.
    AmplitudeDamping {
        /// Decay probability in `[0, 1]`.
        gamma: f64,
    },
    /// Pure dephasing with probability `lambda`.
    PhaseDamping {
        /// Dephasing probability in `[0, 1]`.
        lambda: f64,
    },
    /// Single-qubit depolarizing: `rho -> (1-p) rho + p I/2`.
    Depolarizing {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Two-qubit depolarizing: `rho -> (1-p) rho + p I/4`.
    Depolarizing2q {
        /// Error probability in `[0, 1]`.
        p: f64,
    },
    /// Combined T1/T2 decoherence over a duration.
    ThermalRelaxation {
        /// Relaxation time, microseconds (may be infinite).
        t1_us: f64,
        /// Dephasing time, microseconds (may be infinite, `<= 2 T1`).
        t2_us: f64,
        /// Exposure duration, microseconds.
        duration_us: f64,
    },
    /// A single-qubit Pauli channel with explicit branch probabilities.
    Pauli {
        /// `[p_I, p_X, p_Y, p_Z]`, summing to 1.
        probs: [f64; 4],
    },
    /// An arbitrary channel given by its Kraus operators.
    Kraus {
        /// The operators (must satisfy the completeness relation).
        ops: Vec<Matrix>,
    },
}

impl NoiseChannel {
    /// Number of qubits the channel acts on.
    pub fn n_qubits(&self) -> usize {
        match self {
            NoiseChannel::Depolarizing2q { .. } => 2,
            NoiseChannel::Kraus { ops } => ops[0].rows().trailing_zeros() as usize,
            _ => 1,
        }
    }

    /// `true` when the channel is exactly the identity map, so every
    /// application can be skipped.
    pub fn is_trivial(&self) -> bool {
        match self {
            NoiseChannel::AmplitudeDamping { gamma } => *gamma == 0.0,
            NoiseChannel::PhaseDamping { lambda } => *lambda == 0.0,
            NoiseChannel::Depolarizing { p } | NoiseChannel::Depolarizing2q { p } => *p == 0.0,
            NoiseChannel::ThermalRelaxation {
                t1_us,
                t2_us,
                duration_us,
            } => *duration_us == 0.0 || (!t1_us.is_finite() && !t2_us.is_finite()),
            NoiseChannel::Pauli { probs } => probs[0] == 1.0,
            NoiseChannel::Kraus { .. } => false,
        }
    }

    /// The exact Kraus operators, constructed through the same
    /// [`crate::channels`] routines the pre-IR simulator inlined —
    /// density-matrix results through the IR are **bit-identical** to
    /// the historical path.
    ///
    /// Debug builds validate the completeness relation
    /// (`sum_k K_k† K_k = I`) on every construction.
    pub fn kraus_operators(&self) -> Vec<Matrix> {
        let kraus = match self {
            NoiseChannel::AmplitudeDamping { gamma } => channels::amplitude_damping(*gamma),
            NoiseChannel::PhaseDamping { lambda } => channels::phase_damping(*lambda),
            NoiseChannel::Depolarizing { p } => channels::depolarizing(*p),
            NoiseChannel::Depolarizing2q { p } => channels::depolarizing_2q(*p),
            NoiseChannel::ThermalRelaxation {
                t1_us,
                t2_us,
                duration_us,
            } => channels::thermal_relaxation(*t1_us, *t2_us, *duration_us),
            NoiseChannel::Pauli { probs } => {
                let paulis = [Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
                probs
                    .iter()
                    .zip(paulis.iter())
                    .map(|(&p, m)| m.scale(c64(p.sqrt(), 0.0)))
                    .collect()
            }
            NoiseChannel::Kraus { ops } => ops.clone(),
        };
        debug_assert!(
            channels::is_cptp(&kraus, 1e-9),
            "constructed channel {self:?} violates the completeness relation"
        );
        kraus
    }

    /// The channel in trajectory form: the exact Kraus set plus the
    /// sampling strategy. Mixed-unitary channels (depolarizing, Pauli)
    /// sample branches state-independently; damping channels use
    /// state-dependent branch weights.
    pub fn channel_op(&self) -> ChannelOp {
        let kraus = self.kraus_operators();
        match self {
            NoiseChannel::Depolarizing { p } => ChannelOp::mixed_unitary(
                kraus,
                vec![1.0 - 3.0 * p / 4.0, p / 4.0, p / 4.0, p / 4.0],
                vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()],
            ),
            NoiseChannel::Depolarizing2q { p } => {
                let paulis = [Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()];
                let mut probs = Vec::with_capacity(16);
                let mut unitaries = Vec::with_capacity(16);
                for (i, a) in paulis.iter().enumerate() {
                    for (j, b) in paulis.iter().enumerate() {
                        probs.push(if i == 0 && j == 0 {
                            1.0 - 15.0 * p / 16.0
                        } else {
                            p / 16.0
                        });
                        unitaries.push(a.kron(b));
                    }
                }
                ChannelOp::mixed_unitary(kraus, probs, unitaries)
            }
            NoiseChannel::Pauli { probs } => ChannelOp::mixed_unitary(
                kraus,
                probs.to_vec(),
                vec![Matrix::identity(2), sigma_x(), sigma_y(), sigma_z()],
            ),
            _ => ChannelOp::general(kraus),
        }
    }
}

/// Decoherence and error parameters of one logical qubit (copied from
/// the physical qubit its layout entry names).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QubitNoise {
    /// Relaxation time, microseconds.
    pub t1_us: f64,
    /// Dephasing time, microseconds (clamped to `2 T1` at model build).
    pub t2_us: f64,
    /// Depolarizing error per calibrated single-qubit pulse.
    pub gate_error: f64,
    /// Readout confusion parameters.
    pub readout: QubitReadout,
}

/// Two-qubit parameters of one coupled logical pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairNoise {
    /// Depolarizing error per CX-equivalent.
    pub cx_error: f64,
    /// Echoed-CR CNOT duration, `dt`.
    pub cx_duration_dt: u32,
    /// One CR half-pulse duration, `dt`.
    pub cr_duration_dt: u32,
}

/// The compiled-shape noise artifact. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    qubits: Vec<QubitNoise>,
    /// Keyed by the sorted logical pair (coupler lookups are
    /// order-insensitive, like [`Backend::edge`]).
    pairs: BTreeMap<(usize, usize), PairNoise>,
    pulse_1q_duration_dt: u32,
    scale: f64,
}

impl NoiseModel {
    /// Builds the model for a logical register laid out on `backend`
    /// (`layout[i]` = physical qubit of logical qubit `i`), at noise
    /// scale 1.
    ///
    /// Unphysical calibration data with `T2 > 2 T1` is clamped to the
    /// CPTP boundary `T2 = 2 T1`.
    ///
    /// # Panics
    ///
    /// Panics if a layout entry is out of range or repeated.
    pub fn from_backend(backend: &Backend, layout: &[usize]) -> Self {
        for (i, &p) in layout.iter().enumerate() {
            assert!(p < backend.n_qubits(), "physical qubit {p} out of range");
            assert!(!layout[..i].contains(&p), "physical qubit {p} repeated");
        }
        let qubits = layout
            .iter()
            .map(|&p| {
                let qp = backend.qubit(p);
                QubitNoise {
                    t1_us: qp.t1_us,
                    t2_us: qp.t2_us.min(2.0 * qp.t1_us),
                    gate_error: qp.x_error,
                    readout: QubitReadout::symmetric(qp.readout_error),
                }
            })
            .collect();
        let mut pairs = BTreeMap::new();
        for a in 0..layout.len() {
            for b in (a + 1)..layout.len() {
                if backend.coupling_map().are_coupled(layout[a], layout[b]) {
                    let e = backend.edge(layout[a], layout[b]);
                    pairs.insert(
                        (a, b),
                        PairNoise {
                            cx_error: e.cx_error,
                            cx_duration_dt: backend.cx_duration_dt(layout[a], layout[b]),
                            cr_duration_dt: e.cr_duration_dt,
                        },
                    );
                }
            }
        }
        Self {
            qubits,
            pairs,
            pulse_1q_duration_dt: backend.pulse_1q_duration_dt(),
            scale: 1.0,
        }
    }

    /// A noiseless model over `n_qubits` (infinite coherence, zero
    /// error, all-to-all coupling with ideal-backend durations).
    pub fn ideal(n_qubits: usize) -> Self {
        Self::from_backend(
            &Backend::ideal(n_qubits),
            &(0..n_qubits).collect::<Vec<_>>(),
        )
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Parameters of logical qubit `q`.
    pub fn qubit(&self, q: usize) -> &QubitNoise {
        &self.qubits[q]
    }

    /// Parameters of a coupled logical pair (order-insensitive), if the
    /// pair is coupled.
    pub fn pair(&self, a: usize, b: usize) -> Option<&PairNoise> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.get(&key)
    }

    /// The calibrated single-qubit pulse duration, `dt`.
    pub fn pulse_1q_duration_dt(&self) -> u32 {
        self.pulse_1q_duration_dt
    }

    /// The model's noise amplification factor (1 = calibrated noise).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// A copy with all noise strengths amplified by `factor`:
    /// decoherence exposure times and depolarizing probabilities scale
    /// multiplicatively (probabilities clamp at 1). Readout confusion is
    /// **not** scaled — it is not amplified by circuit folding either,
    /// and zero-noise extrapolation treats it separately (M3's job).
    ///
    /// At `factor = 1` the copy is exactly `self`; channel construction
    /// multiplies by the scale in a way that keeps scale-1 results
    /// bit-identical to an unscaled model.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "noise scale must be finite and non-negative (got {factor})"
        );
        Self {
            scale: self.scale * factor,
            ..self.clone()
        }
    }

    /// The readout model of the register.
    pub fn readout(&self) -> ReadoutModel {
        ReadoutModel::new(self.qubits.iter().map(|q| q.readout).collect())
    }

    /// Duration of a gate on logical operands, `dt` — the logical-space
    /// mirror of [`crate::durations::gate_duration_dt`] (pinned to it by
    /// parity tests). Durations are physics, not noise: they do **not**
    /// scale with the noise factor.
    ///
    /// # Panics
    ///
    /// Panics if a two-qubit gate spans a non-coupled logical pair.
    pub fn gate_duration_dt(&self, gate: &Gate, qubits: &[usize]) -> u32 {
        let p1 = self.pulse_1q_duration_dt;
        let pair = |a: usize, b: usize| {
            self.pair(a, b)
                .unwrap_or_else(|| panic!("logical pair ({a}, {b}) is not a coupler"))
        };
        match gate {
            Gate::I | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) => 0,
            Gate::X | Gate::Y | Gate::SX | Gate::H => p1,
            Gate::Rx(_) | Gate::Ry(_) | Gate::U3(..) => 2 * p1,
            Gate::CX => pair(qubits[0], qubits[1]).cx_duration_dt,
            Gate::CZ => pair(qubits[0], qubits[1]).cx_duration_dt + 2 * p1,
            Gate::Swap => 3 * pair(qubits[0], qubits[1]).cx_duration_dt,
            Gate::Rzz(_) => 2 * pair(qubits[0], qubits[1]).cx_duration_dt,
            Gate::Rzx(_) => 2 * pair(qubits[0], qubits[1]).cr_duration_dt + 2 * p1,
        }
    }

    /// The thermal-relaxation channel of logical qubit `q` idling (or
    /// gating) for `duration_dt`, or `None` when the exposure is free of
    /// decoherence (zero duration, infinite T1 *and* T2, or a
    /// zeroed-out noise scale) — identity channels are never emitted, so
    /// a scale-0 model runs on channel-free engines (statevector) too.
    pub fn idle_channel(&self, q: usize, duration_dt: u32) -> Option<NoiseChannel> {
        if duration_dt == 0 {
            return None;
        }
        let qn = &self.qubits[q];
        if !qn.t1_us.is_finite() && !qn.t2_us.is_finite() {
            return None;
        }
        let channel = NoiseChannel::ThermalRelaxation {
            t1_us: qn.t1_us,
            t2_us: qn.t2_us,
            duration_us: dt_to_us(duration_dt) * self.scale,
        };
        (!channel.is_trivial()).then_some(channel)
    }

    /// The depolarizing error of a single-qubit gate of `duration_dt` on
    /// logical qubit `q` (error scales with the calibrated pulse count),
    /// or `None` when the rate vanishes.
    pub fn gate_error_1q(&self, q: usize, duration_dt: u32) -> Option<NoiseChannel> {
        let pulses = f64::from(duration_dt) / f64::from(self.pulse_1q_duration_dt);
        let p = (self.qubits[q].gate_error * pulses * self.scale).clamp(0.0, 1.0);
        (p > 0.0).then_some(NoiseChannel::Depolarizing { p })
    }

    /// The two-qubit depolarizing error of a gate of `duration_dt` on
    /// the coupled logical pair `(a, b)` (error scales with
    /// CX-equivalents), or `None` when the rate vanishes.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not coupled.
    pub fn gate_error_2q(&self, a: usize, b: usize, duration_dt: u32) -> Option<NoiseChannel> {
        let pn = self
            .pair(a, b)
            .unwrap_or_else(|| panic!("logical pair ({a}, {b}) is not a coupler"));
        let cx_equiv = f64::from(duration_dt) / f64::from(pn.cx_duration_dt);
        let p = (pn.cx_error * cx_equiv * self.scale).clamp(0.0, 1.0);
        (p > 0.0).then_some(NoiseChannel::Depolarizing2q { p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durations::gate_duration_dt;
    use hgp_circuit::Param;
    use hgp_sim::{DensityMatrix, SimBackend, StateVector};

    #[test]
    fn channels_expose_their_exact_kraus_sets() {
        for ch in [
            NoiseChannel::AmplitudeDamping { gamma: 0.3 },
            NoiseChannel::PhaseDamping { lambda: 0.2 },
            NoiseChannel::Depolarizing { p: 0.1 },
            NoiseChannel::Depolarizing2q { p: 0.05 },
            NoiseChannel::ThermalRelaxation {
                t1_us: 100.0,
                t2_us: 80.0,
                duration_us: 0.5,
            },
            NoiseChannel::Pauli {
                probs: [0.9, 0.04, 0.03, 0.03],
            },
        ] {
            let kraus = ch.kraus_operators();
            assert!(channels::is_cptp(&kraus, 1e-12), "{ch:?}");
            assert_eq!(kraus[0].rows(), 1 << ch.n_qubits());
        }
    }

    #[test]
    fn mixed_unitary_channels_sample_state_independently() {
        assert!(NoiseChannel::Depolarizing { p: 0.2 }
            .channel_op()
            .is_mixed_unitary());
        assert!(NoiseChannel::Depolarizing2q { p: 0.2 }
            .channel_op()
            .is_mixed_unitary());
        assert!(NoiseChannel::Pauli {
            probs: [0.7, 0.1, 0.1, 0.1]
        }
        .channel_op()
        .is_mixed_unitary());
        assert!(!NoiseChannel::AmplitudeDamping { gamma: 0.2 }
            .channel_op()
            .is_mixed_unitary());
    }

    #[test]
    fn trajectory_and_exact_forms_agree_on_a_pauli_channel() {
        // Ensemble mean of the sampled channel converges to the exact map.
        use hgp_math::pauli::{Pauli, PauliString, PauliSum};
        use hgp_sim::{TrajectoryEngine, TrajectoryProgram};
        let ch = NoiseChannel::Pauli {
            probs: [0.8, 0.05, 0.05, 0.1],
        };
        let mut program = TrajectoryProgram::new(1);
        program.push_gate(Gate::H, &[0]);
        program.push_channel(ch.channel_op(), &[0]);
        let mut rho = DensityMatrix::init(1);
        program.apply_exact(&mut rho);
        let x = PauliSum::from_terms(vec![PauliString::new(1, vec![(0, Pauli::X)], 1.0)]);
        let exact = SimBackend::expectation(&rho, &x);
        let mean = TrajectoryEngine::new(8192, 3).expectation(&program, &x);
        assert!((mean - exact).abs() < 0.04, "{mean} vs {exact}");
    }

    #[test]
    fn model_copies_layout_parameters() {
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[3, 5]);
        assert_eq!(model.n_qubits(), 2);
        assert_eq!(model.qubit(0).t1_us, backend.qubit(3).t1_us);
        assert_eq!(model.qubit(1).gate_error, backend.qubit(5).x_error);
        assert_eq!(model.qubit(0).readout.p01, backend.qubit(3).readout_error);
        assert!((model.scale() - 1.0).abs() == 0.0);
    }

    #[test]
    fn model_durations_match_backend_durations() {
        let backend = Backend::ibmq_guadalupe();
        let layout = vec![1, 2, 3, 5];
        let model = NoiseModel::from_backend(&backend, &layout);
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::X, vec![0]),
            (Gate::H, vec![2]),
            (Gate::Rz(Param::bound(0.3)), vec![1]),
            (Gate::Rx(Param::bound(0.3)), vec![3]),
            (Gate::CX, vec![0, 1]),
            (Gate::CZ, vec![1, 2]),
            (Gate::Rzz(Param::bound(0.7)), vec![2, 3]),
            (Gate::Rzx(Param::bound(0.7)), vec![0, 1]),
            (Gate::Swap, vec![1, 2]),
        ];
        for (gate, qubits) in gates {
            let phys: Vec<usize> = qubits.iter().map(|&q| layout[q]).collect();
            assert_eq!(
                model.gate_duration_dt(&gate, &qubits),
                gate_duration_dt(&backend, &gate, &phys),
                "{gate:?}"
            );
        }
    }

    #[test]
    fn ideal_model_emits_no_channels() {
        let model = NoiseModel::ideal(3);
        assert!(model.idle_channel(0, 480).is_none());
        assert!(model.gate_error_1q(1, 160).is_none());
        assert!(model.gate_error_2q(0, 1, 320).is_none());
    }

    #[test]
    fn scale_one_channels_are_bit_identical_to_inline_construction() {
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[0, 1]);
        let qp = backend.qubit(0);
        // Thermal relaxation: same parameters, same matrices.
        let by_model = model.idle_channel(0, 320).unwrap().kraus_operators();
        let inline = channels::thermal_relaxation(qp.t1_us, qp.t2_us, dt_to_us(320));
        assert_eq!(by_model.len(), inline.len());
        for (a, b) in by_model.iter().zip(inline.iter()) {
            for r in 0..2 {
                for c in 0..2 {
                    assert_eq!(a[(r, c)].re.to_bits(), b[(r, c)].re.to_bits());
                    assert_eq!(a[(r, c)].im.to_bits(), b[(r, c)].im.to_bits());
                }
            }
        }
        // Gate error: identical probability arithmetic.
        let pulses = 320.0 / f64::from(backend.pulse_1q_duration_dt());
        let p_inline = (qp.x_error * pulses).clamp(0.0, 1.0);
        match model.gate_error_1q(0, 320).unwrap() {
            NoiseChannel::Depolarizing { p } => assert_eq!(p.to_bits(), p_inline.to_bits()),
            other => panic!("unexpected channel {other:?}"),
        }
    }

    #[test]
    fn scaling_amplifies_channel_strength() {
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[0, 1]);
        let tripled = model.scaled(3.0);
        assert_eq!(tripled.scale(), 3.0);
        // Depolarizing probability triples (below the clamp).
        let p1 = match model.gate_error_1q(0, 160).unwrap() {
            NoiseChannel::Depolarizing { p } => p,
            _ => unreachable!(),
        };
        let p3 = match tripled.gate_error_1q(0, 160).unwrap() {
            NoiseChannel::Depolarizing { p } => p,
            _ => unreachable!(),
        };
        assert!((p3 - 3.0 * p1).abs() < 1e-15);
        // Thermal exposure time triples.
        match tripled.idle_channel(0, 160).unwrap() {
            NoiseChannel::ThermalRelaxation { duration_us, .. } => {
                assert!((duration_us - 3.0 * dt_to_us(160)).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
        // Scale 0 silences gate error entirely.
        assert!(model.scaled(0.0).gate_error_1q(0, 160).is_none());
        // Scaling composes multiplicatively.
        assert_eq!(model.scaled(2.0).scaled(1.5).scale(), 3.0);
    }

    #[test]
    fn zeroed_scale_emits_no_channels_and_runs_on_the_statevector() {
        // The ZNE noiseless endpoint: a scale-0 model must emit no
        // channels at all (identity channels would panic the
        // channel-free statevector engine and waste O(4^n) work on the
        // density matrix).
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[0, 1]).scaled(0.0);
        assert!(model.idle_channel(0, 640).is_none());
        assert!(model.gate_error_1q(0, 160).is_none());
        assert!(model.gate_error_2q(0, 1, 320).is_none());
        let sim = crate::NoisySimulator::new(&backend);
        let mut qc = hgp_circuit::Circuit::new(2);
        qc.h(0).cx(0, 1);
        let psi: StateVector = sim.simulate_with_model(&qc, &model).unwrap();
        let ideal = StateVector::from_circuit(&qc).unwrap();
        assert!((psi.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_noise_degrades_the_state_further() {
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[0, 1]);
        let purity = |m: &NoiseModel| {
            let mut rho = DensityMatrix::zero_state(2);
            rho.apply_gate(&Gate::H, &[0]).unwrap();
            rho.apply_gate(&Gate::CX, &[0, 1]).unwrap();
            for q in 0..2 {
                if let Some(ch) = m.idle_channel(q, 640) {
                    rho.apply_kraus(&ch.kraus_operators(), &[q]);
                }
                if let Some(ch) = m.gate_error_1q(q, 160) {
                    rho.apply_kraus(&ch.kraus_operators(), &[q]);
                }
            }
            rho.purity()
        };
        let base = purity(&model);
        let amplified = purity(&model.scaled(3.0));
        assert!(amplified < base, "{amplified} vs {base}");
        let _ = StateVector::zero_state(1);
    }

    #[test]
    #[should_panic(expected = "not a coupler")]
    fn uncoupled_pair_duration_panics() {
        let backend = Backend::ibmq_guadalupe();
        let model = NoiseModel::from_backend(&backend, &[0, 15]);
        let _ = model.gate_duration_dt(&Gate::CX, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_layout_entry_panics() {
        let _ = NoiseModel::from_backend(&Backend::ideal(3), &[0, 0]);
    }
}
