//! Gate durations on a backend, in `dt`.
//!
//! The gate level pays for every rotation in calibrated pulse time:
//! `RZ`-family gates are *virtual* (frame changes, zero duration); `X` and
//! `SX` are one calibrated pulse (160 dt); every other single-qubit gate
//! decomposes to `RZ·SX·RZ·SX·RZ` and costs two pulses (320 dt — the
//! paper's "raw mixer layer duration"); `CX` is the echoed-CR schedule;
//! `RZZ` is two CXs plus a virtual `RZ`.

use hgp_circuit::Gate;
use hgp_device::Backend;

/// Duration of a gate on `backend`, in `dt` units.
///
/// `qubits` are the *physical* operands (used to look up per-edge CR
/// durations for two-qubit gates).
///
/// # Panics
///
/// Panics if a two-qubit gate is applied across a non-coupled pair; route
/// circuits before asking for durations.
pub fn gate_duration_dt(backend: &Backend, gate: &Gate, qubits: &[usize]) -> u32 {
    let p1 = backend.pulse_1q_duration_dt();
    match gate {
        // Virtual frame changes.
        Gate::I | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) => 0,
        // One calibrated pulse. Y = RZ-X-RZ, H = RZ-SX-RZ.
        Gate::X | Gate::Y | Gate::SX | Gate::H => p1,
        // Generic 1q rotations: RZ-SX-RZ-SX-RZ, i.e. two pulses.
        Gate::Rx(_) | Gate::Ry(_) | Gate::U3(..) => 2 * p1,
        Gate::CX => backend.cx_duration_dt(qubits[0], qubits[1]),
        // CZ = H-CX-H on the target.
        Gate::CZ => backend.cx_duration_dt(qubits[0], qubits[1]) + 2 * p1,
        // SWAP = 3 CX.
        Gate::Swap => 3 * backend.cx_duration_dt(qubits[0], qubits[1]),
        // RZZ = CX - RZ - CX.
        Gate::Rzz(_) => 2 * backend.cx_duration_dt(qubits[0], qubits[1]),
        // One echoed CR (half a CX's CR content plus echoes).
        Gate::Rzx(_) => {
            let e = backend.edge(qubits[0], qubits[1]);
            2 * e.cr_duration_dt + 2 * p1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_circuit::Param;

    #[test]
    fn virtual_gates_are_free() {
        let b = Backend::ibmq_toronto();
        assert_eq!(gate_duration_dt(&b, &Gate::Rz(Param::bound(0.3)), &[0]), 0);
        assert_eq!(gate_duration_dt(&b, &Gate::S, &[0]), 0);
    }

    #[test]
    fn rx_costs_two_pulses() {
        let b = Backend::ibmq_toronto();
        assert_eq!(
            gate_duration_dt(&b, &Gate::Rx(Param::bound(0.3)), &[0]),
            320
        );
        assert_eq!(gate_duration_dt(&b, &Gate::X, &[0]), 160);
    }

    #[test]
    fn rzz_costs_two_cx() {
        let b = Backend::ibmq_toronto();
        let cx = gate_duration_dt(&b, &Gate::CX, &[0, 1]);
        assert_eq!(
            gate_duration_dt(&b, &Gate::Rzz(Param::bound(1.0)), &[0, 1]),
            2 * cx
        );
    }

    #[test]
    #[should_panic(expected = "not a coupler")]
    fn uncoupled_cx_panics() {
        let b = Backend::ibmq_guadalupe();
        let _ = gate_duration_dt(&b, &Gate::CX, &[0, 15]);
    }
}
