//! Property and convergence tests of the typed noise IR.
//!
//! Three contracts are pinned here:
//!
//! 1. **CPTP everywhere**: every channel the IR can construct satisfies
//!    the completeness relation across its full parameter space —
//!    [`thermal_relaxation`] in particular over the whole physical
//!    `T2 <= 2 T1` wedge including the clamp boundary, where the pure
//!    dephasing rate `1/T2 - 1/(2 T1)` crosses zero.
//! 2. **IR parity**: channels fetched through a [`NoiseModel`] are
//!    bit-identical to the historical inline construction, and the
//!    strided readout sweep is bit-identical to its `_reference`.
//! 3. **Trajectory convergence and determinism**: the stochastic
//!    statevector path estimates the density-matrix expectation within
//!    statistical tolerance at a fixed seed, and parallel ensembles are
//!    bit-identical to the sequential loop.

use proptest::prelude::*;

use hgp_circuit::Circuit;
use hgp_device::Backend;
use hgp_math::pauli::{Pauli, PauliString, PauliSum};
use hgp_noise::channels::{
    amplitude_damping, depolarizing, depolarizing_2q, is_cptp, phase_damping, thermal_relaxation,
};
use hgp_noise::{NoiseChannel, NoiseModel, NoisySimulator, ReadoutModel};
use hgp_sim::{DensityMatrix, SimBackend, TrajectoryEngine};

fn assert_matrices_bit_equal(a: &[hgp_math::Matrix], b: &[hgp_math::Matrix]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.rows(), y.rows());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                assert_eq!(x[(r, c)].re.to_bits(), y[(r, c)].re.to_bits());
                assert_eq!(x[(r, c)].im.to_bits(), y[(r, c)].im.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // --- CPTP across the parameter space -----------------------------

    #[test]
    fn thermal_relaxation_is_cptp_over_the_physical_wedge(
        t1 in 0.05f64..2000.0,
        // T2 anywhere in (0, 2 T1): `ratio -> 2.0` approaches the clamp
        // boundary where pure dephasing vanishes (the boundary itself is
        // pinned deterministically below).
        ratio in 0.01f64..2.0,
        duration in 0.0f64..5000.0,
    ) {
        let t2 = t1 * ratio;
        let kraus = thermal_relaxation(t1, t2, duration);
        prop_assert!(is_cptp(&kraus, 1e-9), "t1={t1} t2={t2} d={duration}");
        // The IR wrapper builds the same (valid) channel.
        let ch = NoiseChannel::ThermalRelaxation { t1_us: t1, t2_us: t2, duration_us: duration };
        prop_assert!(is_cptp(&ch.kraus_operators(), 1e-9));
    }

    #[test]
    fn damping_and_depolarizing_are_cptp(p in 0.0f64..1.0) {
        prop_assert!(is_cptp(&amplitude_damping(p), 1e-12));
        prop_assert!(is_cptp(&phase_damping(p), 1e-12));
        prop_assert!(is_cptp(&depolarizing(p), 1e-12));
        prop_assert!(is_cptp(&depolarizing_2q(p), 1e-12));
    }

    #[test]
    fn pauli_channels_are_cptp(a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0) {
        // Normalize three free weights into a distribution with p_I >= 0.
        let total = 1.0 + a + b + c;
        let probs = [1.0 / total, a / total, b / total, c / total];
        let ch = NoiseChannel::Pauli { probs };
        prop_assert!(is_cptp(&ch.kraus_operators(), 1e-9));
    }

    #[test]
    fn scaled_gate_error_stays_a_probability(scale in 0.0f64..50.0) {
        // However hard ZNE amplifies, depolarizing rates stay in [0, 1].
        let backend = Backend::ibmq_toronto();
        let model = NoiseModel::from_backend(&backend, &[0, 1]).scaled(scale);
        if let Some(NoiseChannel::Depolarizing { p }) = model.gate_error_1q(0, 320) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        if let Some(NoiseChannel::Depolarizing2q { p }) = model.gate_error_2q(0, 1, 1000) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        if let Some(ch) = model.idle_channel(0, 640) {
            prop_assert!(is_cptp(&ch.kraus_operators(), 1e-9));
        }
    }

    // --- readout parity ----------------------------------------------

    #[test]
    fn readout_sweep_matches_reference_on_random_distributions(
        seed in 0u64..u64::MAX,
        n in 1usize..7,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let model = ReadoutModel::new(
            (0..n)
                .map(|_| hgp_noise::readout::QubitReadout {
                    p01: rng.gen_range(0.0..0.5),
                    p10: rng.gen_range(0.0..0.5),
                })
                .collect(),
        );
        let mut probs: Vec<f64> = (0..1usize << n).map(|_| rng.gen::<f64>()).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let fast = model.apply_to_probabilities(&probs);
        let reference = model.apply_to_probabilities_reference(&probs);
        for (a, b) in fast.iter().zip(reference.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// --- clamp boundary, deterministically ------------------------------

#[test]
fn thermal_relaxation_at_the_exact_t2_boundary() {
    // T2 = 2 T1 exactly: pure dephasing rate is 0 up to round-off, and
    // the `.max(0.0)` clamp must absorb the negative round-off branch.
    for t1 in [0.37, 1.0, 55.5, 980.0] {
        let kraus = thermal_relaxation(t1, 2.0 * t1, 13.0);
        assert!(is_cptp(&kraus, 1e-9), "t1={t1}");
    }
    // Just inside the 1e-9 assertion tolerance above the boundary.
    let t1 = 10.0;
    let kraus = thermal_relaxation(t1, 2.0 * t1 * (1.0 + 5e-10), 3.0);
    assert!(is_cptp(&kraus, 1e-9));
}

#[test]
#[should_panic(expected = "T2 must not exceed")]
fn thermal_relaxation_beyond_the_boundary_still_panics() {
    let _ = thermal_relaxation(10.0, 20.1, 1.0);
}

#[test]
fn model_clamps_unphysical_backend_t2() {
    // A model never hands thermal_relaxation an unphysical T2, even if
    // calibration data is at (or numerically above) the boundary.
    let backend = Backend::ibmq_toronto();
    let model = NoiseModel::from_backend(&backend, &[0]);
    assert!(model.qubit(0).t2_us <= 2.0 * model.qubit(0).t1_us);
    let ch = model.idle_channel(0, 480).expect("noisy backend");
    assert!(is_cptp(&ch.kraus_operators(), 1e-9));
}

// --- IR parity with the historical inline construction --------------

#[test]
fn model_channels_are_bit_identical_to_inline_kraus_lists() {
    let backend = Backend::ibmq_guadalupe();
    let layout = [1, 2, 3];
    let model = NoiseModel::from_backend(&backend, &layout);
    for (logical, &phys) in layout.iter().enumerate() {
        let qp = backend.qubit(phys);
        for duration in [1u32, 160, 320, 704, 2048] {
            // Thermal relaxation.
            let by_model = model
                .idle_channel(logical, duration)
                .expect("noisy backend")
                .kraus_operators();
            let inline = thermal_relaxation(qp.t1_us, qp.t2_us, hgp_device::dt_to_us(duration));
            assert_matrices_bit_equal(&by_model, &inline);
            // 1q depolarizing.
            let pulses = f64::from(duration) / f64::from(backend.pulse_1q_duration_dt());
            let p = (qp.x_error * pulses).clamp(0.0, 1.0);
            if p > 0.0 {
                let by_model = model
                    .gate_error_1q(logical, duration)
                    .expect("nonzero error")
                    .kraus_operators();
                assert_matrices_bit_equal(&by_model, &depolarizing(p));
            }
        }
    }
    // 2q depolarizing on a coupled pair.
    let e = backend.edge(layout[0], layout[1]);
    let cx_dt = backend.cx_duration_dt(layout[0], layout[1]);
    for duration in [cx_dt, 2 * cx_dt, 3 * cx_dt / 2] {
        let p = (e.cx_error * (f64::from(duration) / f64::from(cx_dt))).clamp(0.0, 1.0);
        let by_model = model
            .gate_error_2q(0, 1, duration)
            .expect("nonzero error")
            .kraus_operators();
        assert_matrices_bit_equal(&by_model, &depolarizing_2q(p));
    }
}

// --- trajectory convergence and determinism -------------------------

fn noisy_qaoa_like(n: usize) -> Circuit {
    let mut qc = Circuit::new(n);
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n - 1 {
        qc.rzz(q, q + 1, 0.4);
    }
    for q in 0..n {
        qc.rx(q, 0.8);
    }
    qc
}

fn zz_chain(n: usize) -> PauliSum {
    PauliSum::from_terms(
        (0..n - 1)
            .map(|q| PauliString::new(n, vec![(q, Pauli::Z), (q + 1, Pauli::Z)], 1.0))
            .collect(),
    )
}

#[test]
fn trajectory_mean_tracks_the_density_matrix_on_a_qaoa_layer() {
    let backend = Backend::ibmq_guadalupe();
    let sim = NoisySimulator::new(&backend);
    let layout = [0, 1, 2, 3];
    let qc = noisy_qaoa_like(4);
    let obs = zz_chain(4);
    let rho: DensityMatrix = sim.simulate(&qc, &layout).unwrap();
    let exact = SimBackend::expectation(&rho, &obs);
    let program = sim.trajectory_program(&qc, &layout).unwrap();
    let (mean, stderr) = TrajectoryEngine::new(4096, 29).expectation_with_error(&program, &obs);
    assert!(stderr > 0.0);
    assert!(
        (mean - exact).abs() < 4.0 * stderr.max(1e-3),
        "mean {mean} vs exact {exact} (stderr {stderr})"
    );
}

#[test]
fn trajectory_ensembles_are_schedule_independent() {
    // The engine may fan trajectories out over worker threads; every
    // per-trajectory value must equal the sequential loop's, bit for
    // bit, and reductions must be reproducible run to run.
    let backend = Backend::ibmq_guadalupe();
    let sim = NoisySimulator::new(&backend);
    let layout = [0, 1, 2, 3];
    let qc = noisy_qaoa_like(4);
    let obs = zz_chain(4);
    let program = sim.trajectory_program(&qc, &layout).unwrap();
    let engine = TrajectoryEngine::new(128, 31);
    let parallel = engine.expectations(&program, &obs);
    let sequential: Vec<f64> = (0..128)
        .map(|i| {
            program
                .run_trajectory(engine.trajectory_seed(i))
                .expectation(&obs)
        })
        .collect();
    for (a, b) in parallel.iter().zip(sequential.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        engine.expectation(&program, &obs).to_bits(),
        engine.expectation(&program, &obs).to_bits()
    );
    assert_eq!(
        engine.sample_counts(&program),
        engine.sample_counts(&program)
    );
}
