#![forbid(unsafe_code)]

//! Dense complex linear algebra for quantum simulation.
//!
//! This crate is the numerical foundation of the hybrid gate-pulse
//! workspace. It provides:
//!
//! - [`Complex64`]: a `f64`-based complex number (the workspace avoids
//!   external numerics crates, so the type is defined here),
//! - [`Matrix`]: a dense, row-major complex matrix with the operations a
//!   quantum simulator needs (product, adjoint, Kronecker product, trace),
//! - Hermitian eigendecomposition ([`eigen::eigh`]) via the cyclic Jacobi
//!   method, and matrix exponentials built on top of it
//!   ([`expm::expm_hermitian`], [`expm::expi_hermitian`]),
//! - Pauli matrices and Pauli-string algebra ([`pauli`]),
//! - an analytic fast path for SU(2) rotations ([`su2::exp_i_pauli`]).
//!
//! # Example
//!
//! ```
//! use hgp_math::pauli;
//!
//! // exp(-i (pi/2) X) style rotations come out unitary:
//! let x = pauli::sigma_x();
//! let u = hgp_math::expm::expi_hermitian(&x, -std::f64::consts::FRAC_PI_2);
//! assert!(u.is_unitary(1e-12));
//! ```

pub mod complex;
pub mod eigen;
pub mod expm;
pub mod fnv;
pub mod matrix;
pub mod pauli;
pub mod su2;

pub use complex::Complex64;
pub use matrix::Matrix;

/// Shorthand constructor for a [`Complex64`].
///
/// ```
/// use hgp_math::c64;
/// let z = c64(1.0, -2.0);
/// assert_eq!(z.re, 1.0);
/// assert_eq!(z.im, -2.0);
/// ```
#[inline]
pub fn c64(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}
