//! Analytic SU(2) exponentials — the single-qubit fast path.
//!
//! A single-qubit drive Hamiltonian is always of the form
//! `H = (ax X + ay Y + az Z) / something`; its propagator over a time step
//! has the closed form
//!
//! ```text
//! exp(-i (ax X + ay Y + az Z)) = cos|a| I - i sin|a| (a_hat . sigma)
//! ```
//!
//! Evaluating this directly is ~50x faster than the Jacobi eigensolver and
//! exactly unitary, which matters because the pulse simulator composes
//! thousands of these per schedule.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// Computes `exp(-i (ax X + ay Y + az Z))` analytically.
///
/// The result is always exactly unitary (up to floating-point rounding in
/// the trig calls).
///
/// ```
/// use hgp_math::su2::exp_i_pauli;
/// use hgp_math::pauli::sigma_x;
/// use std::f64::consts::FRAC_PI_2;
/// // A pi/2 X rotation: exp(-i (pi/4) X).
/// let u = exp_i_pauli(FRAC_PI_2 / 2.0, 0.0, 0.0);
/// assert!(u.is_unitary(1e-15));
/// ```
pub fn exp_i_pauli(ax: f64, ay: f64, az: f64) -> Matrix {
    let norm = (ax * ax + ay * ay + az * az).sqrt();
    if norm < 1e-300 {
        return Matrix::identity(2);
    }
    let (c, s) = (norm.cos(), norm.sin());
    let (nx, ny, nz) = (ax / norm, ay / norm, az / norm);
    // cos I - i sin (n . sigma)
    Matrix::from_rows(&[
        &[Complex64::new(c, -s * nz), Complex64::new(-s * ny, -s * nx)],
        &[Complex64::new(s * ny, -s * nx), Complex64::new(c, s * nz)],
    ])
}

/// Propagator of the rotating-frame drive Hamiltonian
/// `H = (delta/2) Z + (omega/2)(cos(phi) X + sin(phi) Y)` over time `dt`.
///
/// `delta` is the detuning (rad/time), `omega` the instantaneous Rabi rate
/// (rad/time), and `phi` the drive phase.
pub fn drive_step(delta: f64, omega: f64, phi: f64, dt: f64) -> Matrix {
    let ax = 0.5 * omega * phi.cos() * dt;
    let ay = 0.5 * omega * phi.sin() * dt;
    let az = 0.5 * delta * dt;
    exp_i_pauli(ax, ay, az)
}

/// Decomposes a 2x2 unitary into `U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)`
/// (ZYZ Euler angles). Returns `(alpha, beta, gamma, delta)`.
///
/// Useful for resynthesizing runs of single-qubit gates into a single `U3`.
///
/// # Panics
///
/// Panics if `u` is not 2x2.
pub fn zyz_decompose(u: &Matrix) -> (f64, f64, f64, f64) {
    assert_eq!(u.rows(), 2, "zyz_decompose requires a 2x2 matrix");
    assert_eq!(u.cols(), 2, "zyz_decompose requires a 2x2 matrix");
    let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
    let alpha = det.arg() / 2.0;
    // Remove the global phase so the remainder is in SU(2).
    let phase = Complex64::cis(-alpha);
    let a = u[(0, 0)] * phase;
    let b = u[(0, 1)] * phase;
    // SU(2): [[cos(g/2) e^{-i(b+d)/2}, -sin(g/2) e^{-i(b-d)/2}],
    //         [sin(g/2) e^{ i(b-d)/2},  cos(g/2) e^{ i(b+d)/2}]]
    let gamma = 2.0 * b.norm().atan2(a.norm());
    // With gamma in [0, pi], cos and sin of gamma/2 are non-negative, so
    // arg(a) = -(beta+delta)/2 and arg(b) = pi - (beta-delta)/2.
    let (beta, delta) = if a.norm() > 1e-12 && b.norm() > 1e-12 {
        let sum = -2.0 * a.arg(); // beta + delta
        let diff = 2.0 * std::f64::consts::PI - 2.0 * b.arg(); // beta - delta
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    } else if a.norm() > 1e-12 {
        (-2.0 * a.arg(), 0.0)
    } else {
        (2.0 * std::f64::consts::PI - 2.0 * b.arg(), 0.0)
    };
    (alpha, beta, gamma, delta)
}

/// Rebuilds the unitary from ZYZ angles, for round-trip validation.
pub fn zyz_compose(alpha: f64, beta: f64, gamma: f64, delta: f64) -> Matrix {
    // exp_i_pauli(ax, ay, az) = exp(-i (ax X + ay Y + az Z)), so
    // Rz(t) = exp(-i t Z / 2) = exp_i_pauli(0, 0, t/2) and likewise for Ry.
    let rz_b = exp_i_pauli(0.0, 0.0, beta / 2.0);
    let ry_g = exp_i_pauli(0.0, gamma / 2.0, 0.0);
    let rz_d = exp_i_pauli(0.0, 0.0, delta / 2.0);
    rz_b.matmul(&ry_g)
        .matmul(&rz_d)
        .scale(Complex64::cis(alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::expm::expi_hermitian;
    use crate::pauli::{sigma_x, sigma_y, sigma_z};
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn matches_eigensolver_exponential() {
        for (ax, ay, az) in [(0.3, 0.0, 0.0), (0.0, 1.2, 0.0), (0.5, -0.7, 0.9)] {
            let h = &(&sigma_x().scale(c64(ax, 0.0)) + &sigma_y().scale(c64(ay, 0.0)))
                + &sigma_z().scale(c64(az, 0.0));
            let by_eig = expi_hermitian(&h, -1.0);
            let analytic = exp_i_pauli(ax, ay, az);
            assert!(analytic.approx_eq(&by_eig, 1e-11));
        }
    }

    #[test]
    fn zero_vector_gives_identity() {
        assert!(exp_i_pauli(0.0, 0.0, 0.0).approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn pi_x_rotation() {
        // exp(-i (pi/2) X) = -i X.
        let u = exp_i_pauli(FRAC_PI_2, 0.0, 0.0);
        let expect = sigma_x().scale(c64(0.0, -1.0));
        assert!(u.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn drive_step_zero_amplitude_is_z_rotation() {
        let u = drive_step(2.0, 0.0, 0.0, 0.5);
        // exp(-i (delta/2) Z dt) with delta*dt = 1.
        let expect = exp_i_pauli(0.0, 0.0, 0.5);
        assert!(u.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn drive_step_phase_rotates_axis() {
        // phi = pi/2 turns an X drive into a Y drive.
        let ux = drive_step(0.0, 1.0, 0.0, 1.0);
        let uy = drive_step(0.0, 1.0, FRAC_PI_2, 1.0);
        assert!(ux.approx_eq(&exp_i_pauli(0.5, 0.0, 0.0), 1e-14));
        assert!(uy.approx_eq(&exp_i_pauli(0.0, 0.5, 0.0), 1e-14));
    }

    #[test]
    fn zyz_round_trip() {
        let cases = [
            exp_i_pauli(0.3, -0.4, 0.9),
            exp_i_pauli(PI / 3.0, 0.0, 0.0),
            exp_i_pauli(0.0, 0.0, 1.1),
            Matrix::identity(2),
            sigma_x().scale(c64(0.0, -1.0)),
        ];
        for u in cases {
            let (a, b, g, d) = zyz_decompose(&u);
            let back = zyz_compose(a, b, g, d);
            assert!(
                back.approx_eq(&u, 1e-10),
                "round trip failed:\n{u}\nvs\n{back}"
            );
        }
    }

    #[test]
    fn composition_of_steps_equals_total_rotation() {
        // Many small steps of a constant drive equal one big step.
        let n = 100;
        let mut acc = Matrix::identity(2);
        for _ in 0..n {
            acc = drive_step(0.4, 1.3, 0.2, 0.01).matmul(&acc);
        }
        let total = drive_step(0.4, 1.3, 0.2, 0.01 * n as f64);
        assert!(acc.approx_eq(&total, 1e-10));
    }
}
