//! Dense, row-major complex matrices.
//!
//! [`Matrix`] is the workhorse container for gate unitaries, pulse
//! propagators, and density matrices. Dimensions in this workspace are small
//! (at most `2^n x 2^n` for `n <= 10` qubits), so a straightforward dense
//! representation with `O(n^3)` products is both simple and fast enough.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;

/// A dense complex matrix stored in row-major order.
///
/// ```
/// use hgp_math::{Matrix, c64};
/// let id = Matrix::identity(2);
/// let x = Matrix::from_rows(&[
///     &[c64(0.0, 0.0), c64(1.0, 0.0)],
///     &[c64(1.0, 0.0), c64(0.0, 0.0)],
/// ]);
/// assert_eq!(&x * &x, id);
/// assert!(x.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a zero-filled matrix of shape `rows x cols`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self { rows, cols, data }
    }

    /// Builds a diagonal square matrix from its diagonal entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Conjugate transpose (the adjoint, `A†`).
    pub fn adjoint(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)].conj();
            }
        }
        t
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree for matmul"
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == Complex64::ZERO {
                    continue;
                }
                let row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d = a.mul_add(b, *d);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // row index drives a slice window
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        let mut out = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = Complex64::ZERO;
            for (&a, &x) in row.iter().zip(v.iter()) {
                acc = a.mul_add(x, acc);
            }
            out[i] = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Matrix {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise modulus, used as a cheap norm bound.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.norm()).fold(0.0, f64::max)
    }

    /// Returns `true` when `self` and `other` agree entry-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (*a - *b).norm() <= tol)
    }

    /// Checks `A†A = I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Checks `A = A†` within `tol` (entry-wise).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..=i {
                if (self[(i, j)] - self[(j, i)].conj()).norm() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when the two matrices are equal up to a global phase.
    ///
    /// Quantum gates are physically identical under `U -> e^{i phi} U`; this
    /// comparison finds the phase from the largest entry of `other` and
    /// rescales before comparing.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Find a reference entry with decent magnitude in `other`.
        let mut best = 0usize;
        let mut best_norm = 0.0;
        for (idx, z) in other.data.iter().enumerate() {
            if z.norm() > best_norm {
                best_norm = z.norm();
                best = idx;
            }
        }
        if best_norm < tol {
            return self.max_abs() < tol;
        }
        if self.data[best].norm() < tol {
            return false;
        }
        let phase = self.data[best] / other.data[best];
        let phase = phase / phase.norm();
        self.approx_eq(&other.scale(phase), tol)
    }

    /// Embeds a `2^k`-dimensional operator acting on `targets` (bit indices,
    /// 0 = least significant) into the full `2^n`-dimensional space.
    ///
    /// `targets[0]` is the *most significant* qubit of the small operator's
    /// index, matching the convention `|q_{t0} q_{t1} ... >` used by gate
    /// matrix definitions in [`hgp_circuit`](../hgp_circuit/index.html).
    ///
    /// # Panics
    ///
    /// Panics if the operator dimension does not equal `2^targets.len()`,
    /// if any target is out of range, or if targets repeat.
    pub fn embed(&self, n_qubits: usize, targets: &[usize]) -> Matrix {
        let k = targets.len();
        assert_eq!(self.rows, 1 << k, "operator dimension must be 2^k");
        assert!(self.is_square(), "operator must be square");
        for &t in targets {
            assert!(
                t < n_qubits,
                "target {t} out of range for {n_qubits} qubits"
            );
        }
        let mut seen = vec![false; n_qubits];
        for &t in targets {
            assert!(!seen[t], "duplicate target {t}");
            seen[t] = true;
        }
        let dim = 1usize << n_qubits;
        let mut out = Matrix::zeros(dim, dim);
        // Iterate over all basis states; map the bits at `targets` through
        // the small operator while every other bit stays fixed.
        for col in 0..dim {
            // Extract the small-operator column index from `col`'s bits.
            let mut small_col = 0usize;
            for (pos, &t) in targets.iter().enumerate() {
                let bit = (col >> t) & 1;
                small_col |= bit << (k - 1 - pos);
            }
            let base = col & !targets.iter().fold(0usize, |m, &t| m | (1 << t));
            for small_row in 0..(1 << k) {
                let amp = self[(small_row, small_col)];
                if amp == Complex64::ZERO {
                    continue;
                }
                let mut row = base;
                for (pos, &t) in targets.iter().enumerate() {
                    let bit = (small_row >> (k - 1 - pos)) & 1;
                    row |= bit << t;
                }
                out[(row, col)] = amp;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(Complex64::from_re(-1.0))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                let z = self[(i, j)];
                write!(f, "{:+.4}{:+.4}i", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn x() -> Matrix {
        Matrix::from_rows(&[
            &[c64(0.0, 0.0), c64(1.0, 0.0)],
            &[c64(1.0, 0.0), c64(0.0, 0.0)],
        ])
    }

    fn z() -> Matrix {
        Matrix::from_diag(&[c64(1.0, 0.0), c64(-1.0, 0.0)])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[
            &[c64(1.0, 2.0), c64(-0.5, 0.0)],
            &[c64(0.0, -1.0), c64(3.0, 0.25)],
        ]);
        let id = Matrix::identity(2);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn xz_anticommute() {
        let xz = x().matmul(&z());
        let zx = z().matmul(&x());
        assert!(xz.approx_eq(&zx.scale(c64(-1.0, 0.0)), 1e-15));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = x();
        let b = Matrix::from_rows(&[
            &[c64(0.0, 1.0), c64(1.0, 0.0)],
            &[c64(-1.0, 0.0), c64(0.0, -1.0)],
        ]);
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let k = x().kron(&z());
        assert_eq!(k.rows(), 4);
        // X (x) Z = [[0, Z], [Z, 0]]
        assert_eq!(k[(0, 2)], c64(1.0, 0.0));
        assert_eq!(k[(1, 3)], c64(-1.0, 0.0));
        assert_eq!(k[(2, 0)], c64(1.0, 0.0));
        assert_eq!(k[(3, 1)], c64(-1.0, 0.0));
        assert_eq!(k[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let k = x().kron(&z());
        assert!(k.is_unitary(1e-14));
    }

    #[test]
    fn trace_of_pauli_is_zero() {
        assert_eq!(x().trace(), Complex64::ZERO);
        assert_eq!(z().trace(), Complex64::ZERO);
        assert_eq!(Matrix::identity(4).trace(), c64(4.0, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, 1.0)],
            &[c64(2.0, -1.0), c64(0.5, 0.5)],
        ]);
        let v = vec![c64(1.0, 1.0), c64(-2.0, 0.0)];
        let col = Matrix::from_vec(2, 1, v.clone());
        let by_matmul = a.matmul(&col);
        let by_matvec = a.matvec(&v);
        assert_eq!(by_matmul[(0, 0)], by_matvec[0]);
        assert_eq!(by_matmul[(1, 0)], by_matvec[1]);
    }

    #[test]
    fn hermitian_check() {
        let h = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, -1.0)],
            &[c64(0.0, 1.0), c64(2.0, 0.0)],
        ]);
        assert!(h.is_hermitian(1e-15));
        assert!(!x().matmul(&z()).is_hermitian(1e-15));
    }

    #[test]
    fn embed_single_qubit_on_lsb() {
        // X on qubit 0 of 2 qubits: maps |00> -> |01>, i.e. column 0 has a 1
        // in row 1 (bit 0 flipped).
        let full = x().embed(2, &[0]);
        assert_eq!(full[(1, 0)], c64(1.0, 0.0));
        assert_eq!(full[(0, 1)], c64(1.0, 0.0));
        assert_eq!(full[(3, 2)], c64(1.0, 0.0));
        assert!(full.is_unitary(1e-14));
    }

    #[test]
    fn embed_matches_kron_ordering() {
        // Embedding X on qubit 1 (of 2, little-endian) equals X (x) I with
        // the convention state index = q1 q0.
        let full = x().embed(2, &[1]);
        let expect = x().kron(&Matrix::identity(2));
        assert!(full.approx_eq(&expect, 1e-15));
    }

    #[test]
    fn embed_two_qubit_cnot() {
        // CNOT with control=1, target=0 in little-endian: |q1 q0>.
        let cnot = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0)],
            &[c64(0.0, 0.0), c64(1.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0)],
            &[c64(0.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(1.0, 0.0)],
            &[c64(0.0, 0.0), c64(0.0, 0.0), c64(1.0, 0.0), c64(0.0, 0.0)],
        ]);
        let full = cnot.embed(2, &[1, 0]);
        assert!(full.approx_eq(&cnot, 1e-15));
    }

    #[test]
    fn phase_insensitive_comparison() {
        let a = x();
        let b = x().scale(Complex64::cis(0.7));
        assert!(b.approx_eq_up_to_phase(&a, 1e-12));
        assert!(!z().approx_eq_up_to_phase(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
