//! Matrix exponentials.
//!
//! Two routes are provided:
//!
//! - [`expi_hermitian`] / [`expm_hermitian`]: exact (to eigensolver
//!   precision) exponentials of Hermitian matrices via diagonalization —
//!   the path used for pulse propagators, which must stay unitary over
//!   thousands of time steps;
//! - [`expm`]: general scaling-and-squaring Taylor exponential, used for
//!   validation and the occasional non-Hermitian generator.

use crate::complex::Complex64;
use crate::eigen::eigh;
use crate::matrix::Matrix;

/// Computes `exp(i * t * H)` for Hermitian `H` via diagonalization.
///
/// The result is unitary by construction (up to eigensolver round-off).
///
/// # Panics
///
/// Panics if `h` is not square/Hermitian.
///
/// ```
/// use hgp_math::{pauli, expm::expi_hermitian};
/// use std::f64::consts::PI;
/// // exp(-i pi X / 2) = -i X
/// let u = expi_hermitian(&pauli::sigma_x(), -PI / 2.0);
/// let expect = pauli::sigma_x().scale(hgp_math::c64(0.0, -1.0));
/// assert!(u.approx_eq(&expect, 1e-12));
/// ```
pub fn expi_hermitian(h: &Matrix, t: f64) -> Matrix {
    let e = eigh(h);
    let phases: Vec<Complex64> = e.values.iter().map(|&l| Complex64::cis(t * l)).collect();
    let diag = Matrix::from_diag(&phases);
    e.vectors.matmul(&diag).matmul(&e.vectors.adjoint())
}

/// Computes `exp(t * H)` for Hermitian `H` (real exponent, e.g. thermal
/// states or test oracles).
///
/// # Panics
///
/// Panics if `h` is not square/Hermitian.
pub fn expm_hermitian(h: &Matrix, t: f64) -> Matrix {
    let e = eigh(h);
    let diag = Matrix::from_diag(
        &e.values
            .iter()
            .map(|&l| Complex64::from_re((t * l).exp()))
            .collect::<Vec<_>>(),
    );
    e.vectors.matmul(&diag).matmul(&e.vectors.adjoint())
}

/// General matrix exponential `exp(A)` by scaling and squaring with a
/// truncated Taylor series.
///
/// Accuracy is adequate for validation (relative error around `1e-12` for
/// well-conditioned inputs); production propagators use the Hermitian path.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm(a: &Matrix) -> Matrix {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    // Scale so the max-abs norm is below 0.5, then square back.
    let norm = a.max_abs() * n as f64;
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::from_re(1.0 / f64::from(1u32 << s.min(31))));
    // Taylor series sum_k scaled^k / k!.
    let mut term = Matrix::identity(n);
    let mut acc = Matrix::identity(n);
    for k in 1..=24 {
        term = term
            .matmul(&scaled)
            .scale(Complex64::from_re(1.0 / k as f64));
        acc = &acc + &term;
        if term.max_abs() < 1e-18 {
            break;
        }
    }
    let mut result = acc;
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::pauli::{sigma_x, sigma_y, sigma_z};
    use std::f64::consts::PI;

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(expm(&z).approx_eq(&Matrix::identity(3), 1e-14));
        assert!(expi_hermitian(&z, 1.0).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn rotation_about_z_is_diagonal_phase() {
        let theta = 0.7;
        let u = expi_hermitian(&sigma_z(), -theta / 2.0);
        assert!((u[(0, 0)] - Complex64::cis(-theta / 2.0)).norm() < 1e-12);
        assert!((u[(1, 1)] - Complex64::cis(theta / 2.0)).norm() < 1e-12);
    }

    #[test]
    fn full_x_rotation_is_minus_identity() {
        // exp(-i pi X) = -I.
        let u = expi_hermitian(&sigma_x(), -PI);
        assert!(u.approx_eq(&Matrix::identity(2).scale(c64(-1.0, 0.0)), 1e-12));
    }

    #[test]
    fn hermitian_exponential_is_unitary() {
        let h = &sigma_x().kron(&sigma_z()) + &sigma_y().kron(&sigma_y());
        for t in [0.1, 1.0, 10.0, -3.7] {
            assert!(expi_hermitian(&h, t).is_unitary(1e-10));
        }
    }

    #[test]
    fn general_expm_agrees_with_hermitian_path() {
        let h = &sigma_x() + &sigma_z();
        let t = 0.9;
        let by_eig = expi_hermitian(&h, t);
        let by_taylor = expm(&h.scale(c64(0.0, t)));
        assert!(by_eig.approx_eq(&by_taylor, 1e-10));
    }

    #[test]
    fn expm_hermitian_real_exponent() {
        // exp(t Z) = diag(e^t, e^-t).
        let m = expm_hermitian(&sigma_z(), 0.5);
        assert!((m[(0, 0)].re - 0.5f64.exp()).abs() < 1e-12);
        assert!((m[(1, 1)].re - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn commuting_exponents_add() {
        let h = sigma_z();
        let a = expi_hermitian(&h, 0.3);
        let b = expi_hermitian(&h, 0.9);
        let ab = a.matmul(&b);
        let sum = expi_hermitian(&h, 1.2);
        assert!(ab.approx_eq(&sum, 1e-12));
    }

    #[test]
    fn expm_of_large_norm_input() {
        let h = sigma_x().scale(c64(0.0, 40.0)); // i*40*X
        let u = expm(&h);
        // exp(i 40 X) = cos(40) I + i sin(40) X.
        let expect = &Matrix::identity(2).scale(c64(40f64.cos(), 0.0))
            + &sigma_x().scale(c64(0.0, 40f64.sin()));
        assert!(u.approx_eq(&expect, 1e-8));
    }
}
