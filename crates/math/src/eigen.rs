//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! The pulse simulator exponentiates small (2x2 and 4x4) Hamiltonians many
//! thousands of times per training run; noise-channel construction needs
//! spectra of slightly larger operators. The complex Jacobi iteration below
//! handles all of these with high accuracy and no external dependencies.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// Result of a Hermitian eigendecomposition: `A = V diag(values) V†`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigh {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: Matrix,
}

impl Eigh {
    /// Reconstructs the original matrix `V diag(values) V†`, mainly for
    /// validation.
    pub fn reconstruct(&self) -> Matrix {
        let diag = Matrix::from_diag(
            &self
                .values
                .iter()
                .map(|&l| Complex64::from_re(l))
                .collect::<Vec<_>>(),
        );
        self.vectors.matmul(&diag).matmul(&self.vectors.adjoint())
    }
}

/// Sum of squared moduli of the strictly-off-diagonal entries.
fn off_diag_norm_sqr(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)].norm_sqr();
            }
        }
    }
    s
}

/// Eigendecomposition of a Hermitian matrix.
///
/// Uses cyclic complex Jacobi rotations; each rotation exactly diagonalizes
/// one 2x2 principal block. Converges quadratically for Hermitian input.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian to `1e-9` (entry-wise).
///
/// ```
/// use hgp_math::{Matrix, c64, eigen::eigh};
/// let h = Matrix::from_rows(&[
///     &[c64(1.0, 0.0), c64(0.0, -1.0)],
///     &[c64(0.0, 1.0), c64(1.0, 0.0)],
/// ]);
/// let e = eigh(&h);
/// assert!((e.values[0] - 0.0).abs() < 1e-12);
/// assert!((e.values[1] - 2.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &Matrix) -> Eigh {
    assert!(a.is_square(), "eigh requires a square matrix");
    assert!(
        a.is_hermitian(1e-9),
        "eigh requires a Hermitian matrix (tolerance 1e-9)"
    );
    let n = a.rows();
    let mut m = a.clone();
    // Symmetrize exactly to suppress round-off drift during sweeps.
    for i in 0..n {
        m[(i, i)] = Complex64::from_re(m[(i, i)].re);
        for j in 0..i {
            let avg = (m[(i, j)] + m[(j, i)].conj()).scale(0.5);
            m[(i, j)] = avg;
            m[(j, i)] = avg.conj();
        }
    }
    let mut v = Matrix::identity(n);
    let scale = m.frobenius_norm().max(1.0);
    let tol = 1e-30 * scale * scale;
    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        if off_diag_norm_sqr(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let z = m[(p, q)];
                if z.norm_sqr() <= tol / (n * n) as f64 {
                    continue;
                }
                let (alpha, beta) = block_eigvec(m[(p, p)].re, m[(q, q)].re, z);
                // J is identity except J[p][p]=alpha, J[q][p]=beta,
                // J[p][q]=-conj(beta), J[q][q]=conj(alpha); columns are the
                // eigenvectors of the (p,q) block, so J† M J zeroes m[p][q].
                apply_rotation(&mut m, &mut v, p, q, alpha, beta);
            }
        }
    }
    // Collect eigenvalues and sort ascending, permuting eigenvectors along.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| values_raw[i].partial_cmp(&values_raw[j]).expect("finite"));
    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigh { values, vectors }
}

/// Unit eigenvector `(alpha, beta)` of the Hermitian block
/// `[[a, z], [conj(z), b]]` for its *larger* eigenvalue.
fn block_eigvec(a: f64, b: f64, z: Complex64) -> (Complex64, Complex64) {
    let d = (a - b) / 2.0;
    let r = z.norm();
    let s = (d * d + r * r).sqrt();
    // Larger eigenvalue: (a+b)/2 + s. Eigenvector: (z, lambda - a)
    // = (z, s - d). Guard against the vector degenerating when d > 0, r ~ 0.
    let (ux, uy) = if d >= 0.0 {
        // lambda - b = d + s is safely away from zero.
        (Complex64::from_re(d + s), z.conj())
    } else {
        (z, Complex64::from_re(s - d))
    };
    let norm = (ux.norm_sqr() + uy.norm_sqr()).sqrt();
    (ux / norm, uy / norm)
}

/// Applies `M <- J† M J` and `V <- V J` where `J` is identity except on the
/// `(p, q)` plane with first column `(alpha, beta)` and second column
/// `(-conj(beta), conj(alpha))`.
fn apply_rotation(
    m: &mut Matrix,
    v: &mut Matrix,
    p: usize,
    q: usize,
    alpha: Complex64,
    beta: Complex64,
) {
    let n = m.rows();
    // Column update: M <- M J (mix columns p and q).
    for i in 0..n {
        let mip = m[(i, p)];
        let miq = m[(i, q)];
        m[(i, p)] = mip * alpha + miq * beta;
        m[(i, q)] = mip * (-beta.conj()) + miq * alpha.conj();
    }
    // Row update: M <- J† M (mix rows p and q).
    for j in 0..n {
        let mpj = m[(p, j)];
        let mqj = m[(q, j)];
        m[(p, j)] = alpha.conj() * mpj + beta.conj() * mqj;
        m[(q, j)] = (-beta) * mpj + alpha * mqj;
    }
    // Enforce exact zero on the annihilated pair to stop round-off creep.
    m[(p, q)] = Complex64::ZERO;
    m[(q, p)] = Complex64::ZERO;
    m[(p, p)] = Complex64::from_re(m[(p, p)].re);
    m[(q, q)] = Complex64::from_re(m[(q, q)].re);
    // Accumulate eigenvectors: V <- V J.
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip * alpha + viq * beta;
        v[(i, q)] = vip * (-beta.conj()) + viq * alpha.conj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use crate::pauli::{sigma_x, sigma_y, sigma_z};

    fn check_decomposition(a: &Matrix, tol: f64) {
        let e = eigh(a);
        assert!(e.vectors.is_unitary(1e-10), "eigenvectors not unitary");
        // A V = V diag(lambda)
        let av = a.matmul(&e.vectors);
        let diag = Matrix::from_diag(
            &e.values
                .iter()
                .map(|&l| Complex64::from_re(l))
                .collect::<Vec<_>>(),
        );
        let vd = e.vectors.matmul(&diag);
        assert!(av.approx_eq(&vd, tol), "A V != V D");
        // Ascending order.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn pauli_spectra() {
        for m in [sigma_x(), sigma_y(), sigma_z()] {
            let e = eigh(&m);
            assert!((e.values[0] + 1.0).abs() < 1e-12);
            assert!((e.values[1] - 1.0).abs() < 1e-12);
            check_decomposition(&m, 1e-10);
        }
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let d = Matrix::from_diag(&[c64(-2.0, 0.0), c64(0.5, 0.0), c64(3.0, 0.0)]);
        let e = eigh(&d);
        assert!((e.values[0] + 2.0).abs() < 1e-14);
        assert!((e.values[1] - 0.5).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn complex_hermitian_4x4() {
        // sigma_y (x) sigma_x is Hermitian with eigenvalues +-1 (doubly).
        let m = sigma_y().kron(&sigma_x());
        check_decomposition(&m, 1e-9);
        let e = eigh(&m);
        assert!((e.values[0] + 1.0).abs() < 1e-10);
        assert!((e.values[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_rows(&[
            &[c64(2.0, 0.0), c64(1.0, 1.0), c64(0.0, -0.5)],
            &[c64(1.0, -1.0), c64(-1.0, 0.0), c64(0.25, 0.0)],
            &[c64(0.0, 0.5), c64(0.25, 0.0), c64(0.5, 0.0)],
        ]);
        assert!(m.is_hermitian(1e-12));
        let e = eigh(&m);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - m.trace().re).abs() < 1e-10);
        check_decomposition(&m, 1e-9);
    }

    #[test]
    fn degenerate_eigenvalues_are_handled() {
        let m = Matrix::identity(4).scale(c64(2.5, 0.0));
        let e = eigh(&m);
        for l in &e.values {
            assert!((l - 2.5).abs() < 1e-13);
        }
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn non_hermitian_input_panics() {
        let m = Matrix::from_rows(&[
            &[c64(0.0, 0.0), c64(1.0, 0.0)],
            &[c64(0.0, 0.0), c64(0.0, 0.0)],
        ]);
        let _ = eigh(&m);
    }
}
