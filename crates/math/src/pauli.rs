//! Pauli matrices and Pauli-string operators.
//!
//! Pauli strings are the natural language for QAOA cost Hamiltonians
//! (`H_P = sum_{(i,j)} w_ij Z_i Z_j`) and for the drive/cross-resonance
//! Hamiltonians of the pulse simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::c64;
use crate::matrix::Matrix;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix of this Pauli operator.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => sigma_x(),
            Pauli::Y => sigma_y(),
            Pauli::Z => sigma_z(),
        }
    }

    /// Parses a Pauli from its letter.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending character if it is not one of
    /// `I`, `X`, `Y`, `Z` (case-insensitive).
    pub fn from_char(c: char) -> Result<Self, char> {
        match c.to_ascii_uppercase() {
            'I' => Ok(Pauli::I),
            'X' => Ok(Pauli::X),
            'Y' => Ok(Pauli::Y),
            'Z' => Ok(Pauli::Z),
            other => Err(other),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// The Pauli-X matrix.
pub fn sigma_x() -> Matrix {
    Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(1.0, 0.0)],
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
    ])
}

/// The Pauli-Y matrix.
pub fn sigma_y() -> Matrix {
    Matrix::from_rows(&[
        &[c64(0.0, 0.0), c64(0.0, -1.0)],
        &[c64(0.0, 1.0), c64(0.0, 0.0)],
    ])
}

/// The Pauli-Z matrix.
pub fn sigma_z() -> Matrix {
    Matrix::from_rows(&[
        &[c64(1.0, 0.0), c64(0.0, 0.0)],
        &[c64(0.0, 0.0), c64(-1.0, 0.0)],
    ])
}

/// A weighted Pauli string acting on `n` qubits, e.g. `0.5 * Z_0 Z_3`.
///
/// Qubit `0` is the least-significant bit of computational-basis indices,
/// matching the simulator convention.
///
/// ```
/// use hgp_math::pauli::{Pauli, PauliString};
/// let zz = PauliString::new(2, vec![(0, Pauli::Z), (1, Pauli::Z)], 1.0);
/// let m = zz.matrix();
/// // ZZ is diagonal with +1 on aligned, -1 on anti-aligned states.
/// assert_eq!(m[(0, 0)].re, 1.0);
/// assert_eq!(m[(1, 1)].re, -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliString {
    n_qubits: usize,
    /// Non-identity factors, sorted by qubit index.
    factors: Vec<(usize, Pauli)>,
    /// Real coefficient.
    coeff: f64,
}

impl PauliString {
    /// Creates a weighted Pauli string.
    ///
    /// Identity factors are dropped; the rest are sorted by qubit.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or repeated.
    pub fn new(n_qubits: usize, factors: Vec<(usize, Pauli)>, coeff: f64) -> Self {
        let mut kept: Vec<(usize, Pauli)> = factors
            .into_iter()
            .filter(|(_, p)| *p != Pauli::I)
            .collect();
        kept.sort_by_key(|&(q, _)| q);
        for w in kept.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "duplicate qubit {} in Pauli string",
                w[0].0
            );
        }
        if let Some(&(q, _)) = kept.last() {
            assert!(q < n_qubits, "qubit {q} out of range for {n_qubits} qubits");
        }
        Self {
            n_qubits,
            factors: kept,
            coeff,
        }
    }

    /// The identity string with a coefficient (an energy offset).
    pub fn identity(n_qubits: usize, coeff: f64) -> Self {
        Self {
            n_qubits,
            factors: Vec::new(),
            coeff,
        }
    }

    /// Number of qubits the string is defined on.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The real coefficient.
    #[inline]
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Non-identity factors, sorted by qubit index.
    #[inline]
    pub fn factors(&self) -> &[(usize, Pauli)] {
        &self.factors
    }

    /// Dense matrix representation (dimension `2^n`).
    pub fn matrix(&self) -> Matrix {
        let dim = 1usize << self.n_qubits;
        let mut m = Matrix::identity(dim).scale(c64(self.coeff, 0.0));
        for &(q, p) in &self.factors {
            m = m.matmul(&p.matrix().embed(self.n_qubits, &[q]));
        }
        m
    }

    /// Evaluates the string's eigenvalue (times the coefficient) on a
    /// computational-basis state, assuming the string is diagonal
    /// (contains only `Z` factors).
    ///
    /// # Panics
    ///
    /// Panics if the string contains an `X` or `Y` factor.
    pub fn eval_diagonal(&self, basis_state: usize) -> f64 {
        let mut sign = 1.0;
        for &(q, p) in &self.factors {
            assert_eq!(p, Pauli::Z, "eval_diagonal requires a Z-only string");
            if (basis_state >> q) & 1 == 1 {
                sign = -sign;
            }
        }
        self.coeff * sign
    }

    /// Whether the string contains only `Z` (and implicit `I`) factors.
    pub fn is_diagonal(&self) -> bool {
        self.factors.iter().all(|&(_, p)| p == Pauli::Z)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+}", self.coeff)?;
        for &(q, p) in &self.factors {
            write!(f, " {p}{q}")?;
        }
        Ok(())
    }
}

/// A real-weighted sum of Pauli strings (an observable / Hamiltonian).
///
/// ```
/// use hgp_math::pauli::{Pauli, PauliString, PauliSum};
/// // Max-Cut cost for a single edge (0,1): 0.5 * (1 - Z0 Z1).
/// let h = PauliSum::from_terms(vec![
///     PauliString::identity(2, 0.5),
///     PauliString::new(2, vec![(0, Pauli::Z), (1, Pauli::Z)], -0.5),
/// ]);
/// assert_eq!(h.eval_diagonal(0b01), 1.0); // cut edge
/// assert_eq!(h.eval_diagonal(0b00), 0.0); // uncut edge
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliSum {
    terms: Vec<PauliString>,
}

impl PauliSum {
    /// Builds a sum from its terms.
    ///
    /// # Panics
    ///
    /// Panics if terms act on differing qubit counts.
    pub fn from_terms(terms: Vec<PauliString>) -> Self {
        if let Some(first) = terms.first() {
            let n = first.n_qubits();
            assert!(
                terms.iter().all(|t| t.n_qubits() == n),
                "all terms must act on the same number of qubits"
            );
        }
        Self { terms }
    }

    /// The individual Pauli-string terms.
    #[inline]
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// Number of qubits (0 if the sum is empty).
    pub fn n_qubits(&self) -> usize {
        self.terms.first().map_or(0, PauliString::n_qubits)
    }

    /// Dense matrix representation.
    ///
    /// # Panics
    ///
    /// Panics if the sum is empty.
    pub fn matrix(&self) -> Matrix {
        let n = self.n_qubits();
        assert!(!self.terms.is_empty(), "cannot materialize an empty sum");
        let mut acc = Matrix::zeros(1 << n, 1 << n);
        for t in &self.terms {
            acc = &acc + &t.matrix();
        }
        acc
    }

    /// Evaluates a diagonal (Z-only) observable on a basis state.
    ///
    /// # Panics
    ///
    /// Panics if any term contains an `X`/`Y` factor.
    pub fn eval_diagonal(&self, basis_state: usize) -> f64 {
        self.terms
            .iter()
            .map(|t| t.eval_diagonal(basis_state))
            .sum()
    }

    /// Whether every term is diagonal.
    pub fn is_diagonal(&self) -> bool {
        self.terms.iter().all(PauliString::is_diagonal)
    }
}

impl FromIterator<PauliString> for PauliSum {
    fn from_iter<I: IntoIterator<Item = PauliString>>(iter: I) -> Self {
        Self::from_terms(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_matrices_are_involutions() {
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            let m = p.matrix();
            assert!(m.matmul(&m).approx_eq(&Matrix::identity(2), 1e-15));
            assert!(m.is_hermitian(1e-15));
            assert!(m.is_unitary(1e-15));
        }
    }

    #[test]
    fn xyz_cyclic_product() {
        // X Y = i Z
        let xy = sigma_x().matmul(&sigma_y());
        let iz = sigma_z().scale(c64(0.0, 1.0));
        assert!(xy.approx_eq(&iz, 1e-15));
    }

    #[test]
    fn from_char_round_trip() {
        for (c, p) in [
            ('I', Pauli::I),
            ('x', Pauli::X),
            ('Y', Pauli::Y),
            ('z', Pauli::Z),
        ] {
            assert_eq!(Pauli::from_char(c).unwrap(), p);
        }
        assert_eq!(Pauli::from_char('q'), Err('Q'));
    }

    #[test]
    fn string_drops_identity_factors() {
        let s = PauliString::new(3, vec![(1, Pauli::I), (0, Pauli::Z)], 2.0);
        assert_eq!(s.factors().len(), 1);
        assert_eq!(s.factors()[0], (0, Pauli::Z));
    }

    #[test]
    fn zz_eigenvalues() {
        let zz = PauliString::new(2, vec![(0, Pauli::Z), (1, Pauli::Z)], 1.0);
        assert_eq!(zz.eval_diagonal(0b00), 1.0);
        assert_eq!(zz.eval_diagonal(0b01), -1.0);
        assert_eq!(zz.eval_diagonal(0b10), -1.0);
        assert_eq!(zz.eval_diagonal(0b11), 1.0);
    }

    #[test]
    fn string_matrix_matches_diagonal_eval() {
        let s = PauliString::new(3, vec![(0, Pauli::Z), (2, Pauli::Z)], -0.75);
        let m = s.matrix();
        for b in 0..8 {
            assert!((m[(b, b)].re - s.eval_diagonal(b)).abs() < 1e-14);
        }
    }

    #[test]
    fn sum_eval_matches_matrix_diagonal() {
        let h = PauliSum::from_terms(vec![
            PauliString::identity(2, 1.0),
            PauliString::new(2, vec![(0, Pauli::Z)], 0.5),
            PauliString::new(2, vec![(0, Pauli::Z), (1, Pauli::Z)], -0.25),
        ]);
        let m = h.matrix();
        for b in 0..4 {
            assert!((m[(b, b)].re - h.eval_diagonal(b)).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubit_panics() {
        let _ = PauliString::new(2, vec![(0, Pauli::Z), (0, Pauli::X)], 1.0);
    }

    #[test]
    fn display_is_readable() {
        let s = PauliString::new(4, vec![(3, Pauli::X), (1, Pauli::Z)], -0.5);
        assert_eq!(s.to_string(), "-0.5 Z1 X3");
    }
}
