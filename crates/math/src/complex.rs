//! A minimal double-precision complex number.
//!
//! The workspace deliberately avoids external numerics dependencies, so the
//! complex type used throughout the simulators is defined here. The API is
//! modelled on `num_complex::Complex64` where that makes migration easy.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use hgp_math::Complex64;
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * exp(i*theta)`.
    ///
    /// ```
    /// use hgp_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `exp(i*theta)`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`; cheaper than [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, matching the IEEE
    /// behaviour of dividing by zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = (self.norm(), self.arg());
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add `self * b + c`, used by the matrix kernels.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self::new(
            self.re * b.re - self.im * b.im + c.re,
            self.re * b.im + self.im * b.re + c.im,
        )
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1 by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < EPS
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, Complex64::from_re(-1.0)));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex64::from_re(25.0)));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::new(-1.25, 0.75);
        let back = Complex64::from_polar(z.norm(), z.arg());
        assert!(close(z, back));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        let e = Complex64::new(0.0, theta).exp();
        assert!(close(e, Complex64::cis(theta)));
        assert!((e.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn exp_adds_exponents() {
        let a = Complex64::new(0.3, -0.8);
        let b = Complex64::new(-0.1, 0.4);
        assert!(close((a + b).exp(), a.exp() * b.exp()));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-2.0, 5.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex64::new(2.0, -1.0);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close(a / b, a * b.inv()));
    }

    #[test]
    fn sum_folds() {
        let zs = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -3.0),
            Complex64::new(-0.5, 0.25),
        ];
        let s: Complex64 = zs.iter().copied().sum();
        assert!(close(s, Complex64::new(2.5, -1.75)));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let c = Complex64::new(0.25, -0.75);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
