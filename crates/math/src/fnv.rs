//! The workspace's canonical structural hasher (FNV-1a, 64 bit).
//!
//! Every structural cache key in the workspace —
//! `hgp_circuit::Circuit::structural_key`,
//! `hgp_core::Program::structural_key`,
//! `hgp_core::compile::HybridShape::structural_key` — folds its
//! canonical byte encoding through this one accumulator, so the
//! encoding primitives (little-endian words, bit-exact `f64`,
//! length-prefixed strings) are defined exactly once.

/// FNV-1a 64-bit accumulator.
///
/// ```
/// use hgp_math::fnv::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.str("rzz");
/// h.f64(0.25);
/// assert_ne!(h.finish(), Fnv1a::new().finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh accumulator at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Folds a `u64` as 8 little-endian bytes.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Folds a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds an `f64` bit-exactly (`to_bits`; `-0.0 != 0.0`, every NaN
    /// payload distinct — structural identity, not numeric equality).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Standard FNV-1a test vectors.
        let hash = |s: &str| {
            let mut h = Fnv1a::new();
            for b in s.bytes() {
                h.byte(b);
            }
            h.finish()
        };
        assert_eq!(hash(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(hash("a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(hash("foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn encoding_primitives_discriminate() {
        let key = |f: &dyn Fn(&mut Fnv1a)| {
            let mut h = Fnv1a::new();
            f(&mut h);
            h.finish()
        };
        assert_ne!(key(&|h| h.f64(0.0)), key(&|h| h.f64(-0.0)));
        assert_ne!(key(&|h| h.str("ab")), key(&|h| h.str("a")));
        // Length prefixing keeps concatenations apart.
        assert_ne!(
            key(&|h| {
                h.str("a");
                h.str("bc");
            }),
            key(&|h| {
                h.str("ab");
                h.str("c");
            })
        );
    }
}
