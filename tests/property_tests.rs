//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use hybrid_gate_pulse::circuit::{Circuit, Gate, Param};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::math::su2::{exp_i_pauli, zyz_compose, zyz_decompose};
use hybrid_gate_pulse::math::Matrix;
use hybrid_gate_pulse::mitigation::{cvar, M3Mitigator};
use hybrid_gate_pulse::noise::channels::{
    amplitude_damping, depolarizing, is_cptp, phase_damping, thermal_relaxation,
};
use hybrid_gate_pulse::noise::ReadoutModel;
use hybrid_gate_pulse::pulse::propagator::{cr_unitary_from_angle, drive_propagator};
use hybrid_gate_pulse::pulse::Waveform;
use hybrid_gate_pulse::sim::{Counts, DensityMatrix, StateVector};

fn angle() -> impl Strategy<Value = f64> {
    -6.3f64..6.3f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- math ---------------------------------------------------------

    #[test]
    fn su2_exponentials_are_unitary(ax in angle(), ay in angle(), az in angle()) {
        let u = exp_i_pauli(ax, ay, az);
        prop_assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn zyz_round_trips_arbitrary_su2(ax in angle(), ay in angle(), az in angle()) {
        let u = exp_i_pauli(ax, ay, az);
        let (a, b, g, d) = zyz_decompose(&u);
        prop_assert!(zyz_compose(a, b, g, d).approx_eq(&u, 1e-8));
    }

    // --- gates ----------------------------------------------------------

    #[test]
    fn parametrized_gates_stay_unitary(theta in angle(), phi in angle(), lam in angle()) {
        for g in [
            Gate::Rx(Param::bound(theta)),
            Gate::Ry(Param::bound(theta)),
            Gate::Rz(Param::bound(theta)),
            Gate::Rzz(Param::bound(theta)),
            Gate::Rzx(Param::bound(theta)),
            Gate::U3(Param::bound(theta), Param::bound(phi), Param::bound(lam)),
        ] {
            prop_assert!(g.matrix().expect("bound").is_unitary(1e-10));
        }
    }

    #[test]
    fn rotation_angles_compose(a in angle(), b in angle()) {
        let ra = Gate::Rx(Param::bound(a)).matrix().expect("bound");
        let rb = Gate::Rx(Param::bound(b)).matrix().expect("bound");
        let rab = Gate::Rx(Param::bound(a + b)).matrix().expect("bound");
        prop_assert!(ra.matmul(&rb).approx_eq(&rab, 1e-10));
    }

    // --- simulators ---------------------------------------------------

    #[test]
    fn random_circuits_preserve_norm(seed in 0u64..500) {
        let mut qc = Circuit::new(4);
        // Deterministic pseudo-random circuit from the seed.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for _ in 0..12 {
            match next() % 4 {
                0 => { qc.h(next() % 4); }
                1 => { qc.rx(next() % 4, (next() % 628) as f64 / 100.0); }
                2 => {
                    let a = next() % 4;
                    let b = (a + 1 + next() % 3) % 4;
                    qc.cx(a, b);
                }
                _ => {
                    let a = next() % 4;
                    let b = (a + 1 + next() % 3) % 4;
                    qc.rzz(a, b, (next() % 628) as f64 / 100.0);
                }
            }
        }
        let psi = StateVector::from_circuit(&qc).expect("bound");
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
        let mut rho = DensityMatrix::zero_state(4);
        rho.apply_circuit(&qc).expect("bound");
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        prop_assert!((rho.purity() - 1.0).abs() < 1e-9);
        prop_assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < 1e-9);
    }

    // --- noise channels -------------------------------------------------

    #[test]
    fn channels_are_cptp(p in 0.0f64..1.0) {
        prop_assert!(is_cptp(&amplitude_damping(p), 1e-10));
        prop_assert!(is_cptp(&phase_damping(p), 1e-10));
        prop_assert!(is_cptp(&depolarizing(p), 1e-10));
    }

    #[test]
    fn thermal_relaxation_is_cptp_and_trace_preserving(
        t1 in 10.0f64..500.0,
        t2_frac in 0.1f64..1.9,
        d in 0.0f64..50.0,
    ) {
        let t2 = (t1 * t2_frac).min(2.0 * t1);
        let ch = thermal_relaxation(t1, t2, d);
        prop_assert!(is_cptp(&ch, 1e-9));
        let mut rho = DensityMatrix::plus_state(1);
        rho.apply_kraus(&ch, &[0]);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        // Purity never increases under this channel from a pure state.
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
    }

    #[test]
    fn readout_confusion_preserves_total_probability(
        e1 in 0.0f64..0.4,
        e2 in 0.0f64..0.4,
        w in 0.0f64..1.0,
    ) {
        let model = ReadoutModel::new(vec![
            hybrid_gate_pulse::noise::readout::QubitReadout { p01: e1, p10: e2 },
            hybrid_gate_pulse::noise::readout::QubitReadout { p01: e2, p10: e1 },
        ]);
        let probs = vec![w / 2.0, (1.0 - w) / 2.0, w / 2.0, (1.0 - w) / 2.0];
        let observed = model.apply_to_probabilities(&probs);
        let sum: f64 = observed.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
        prop_assert!(observed.iter().all(|&p| p >= -1e-12));
    }

    // --- pulses ---------------------------------------------------------

    #[test]
    fn drive_propagators_are_unitary(
        amp in -1.0f64..1.0,
        phase in angle(),
        freq in -0.14f64..0.14,
    ) {
        let w = Waveform::gaussian(160);
        let u = drive_propagator(&w, amp, phase, freq, 0.125);
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn cr_unitaries_are_unitary_and_block_diagonal(theta in -20.0f64..20.0, phase in angle()) {
        let edge = hybrid_gate_pulse::device::TwoQubitParams {
            cx_error: 0.0,
            mu_zx: 0.05,
            mu_ix: 0.1,
            mu_zi: 0.02,
            cr_duration_dt: 256,
        };
        let u = cr_unitary_from_angle(theta, phase, &edge);
        prop_assert!(u.is_unitary(1e-10));
        for i in 0..2 {
            for j in 2..4 {
                prop_assert!(u[(i, j)].norm() < 1e-12);
                prop_assert!(u[(j, i)].norm() < 1e-12);
            }
        }
    }

    // --- mitigation -----------------------------------------------------

    #[test]
    fn cvar_is_bounded_by_best_and_mean(
        c0 in 1u64..1000,
        c1 in 1u64..1000,
        c2 in 1u64..1000,
        alpha in 0.05f64..1.0,
    ) {
        let mut counts = Counts::new(2);
        counts.record(0b00, c0);
        counts.record(0b01, c1);
        counts.record(0b11, c2);
        let cost = |b: usize| b.count_ones() as f64;
        let v = cvar(&counts, cost, alpha, true);
        let mean = counts.expectation_of(cost);
        prop_assert!(v >= mean - 1e-9);
        prop_assert!(v <= 2.0 + 1e-9); // best possible cost
    }

    #[test]
    fn m3_preserves_total_quasi_probability(
        e in 0.0f64..0.2,
        c0 in 1u64..5000,
        c1 in 1u64..5000,
        c2 in 1u64..5000,
    ) {
        let m3 = M3Mitigator::from_readout_model(&ReadoutModel::uniform(3, e));
        let mut counts = Counts::new(3);
        counts.record(0b000, c0);
        counts.record(0b011, c1);
        counts.record(0b110, c2);
        let q = m3.apply(&counts);
        prop_assert!((q.total() - 1.0).abs() < 0.05);
    }

    // --- device ---------------------------------------------------------

    #[test]
    fn any_small_region_routes_any_ring(seed in 0u64..50) {
        // Rings of 4..7 logical qubits route on guadalupe's default
        // region without panicking, and the result stays on couplers.
        let n = 4 + (seed as usize % 4);
        let backend = Backend::ibmq_guadalupe();
        let region = hybrid_gate_pulse::core::models::default_region(&backend, n);
        let sub = hybrid_gate_pulse::core::models::region_coupling(&backend, &region);
        let mut qc = Circuit::new(n);
        for q in 0..n {
            qc.cx(q, (q + 1) % n);
        }
        let layout = hybrid_gate_pulse::transpile::Layout::trivial(n, n);
        let routed = hybrid_gate_pulse::transpile::sabre::route(&qc, &sub, &layout);
        for inst in routed.circuit.instructions() {
            if let hybrid_gate_pulse::circuit::Instruction::Gate { qubits, .. } = inst {
                if qubits.len() == 2 {
                    prop_assert!(sub.are_coupled(qubits[0], qubits[1]));
                }
            }
        }
    }
}

// --- simulation kernels -------------------------------------------------
//
// The fused diagonal / strided dense kernels (and their rayon-chunked
// parallel variants) must agree with the generic branch-per-index
// apply_operator path to 1e-12.

use hybrid_gate_pulse::math::Complex64;
use hybrid_gate_pulse::sim::kernels;

/// A deterministic pseudo-random register of `n` qubits.
fn pseudo_random_amps(n: usize, seed: u64) -> Vec<Complex64> {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    (0..1usize << n)
        .map(|_| Complex64::new(next(), next()))
        .collect()
}

fn max_deviation(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rzz_diagonal_fast_path_matches_generic(
        theta in angle(),
        hi in 0usize..6,
        lo in 0usize..6,
        seed in 0u64..1000,
    ) {
        let (hi, lo) = if hi == lo { ((hi + 1) % 6, lo) } else { (hi, lo) };
        let gate = Gate::Rzz(Param::bound(theta));
        let mut fast = pseudo_random_amps(6, seed);
        let mut generic = fast.clone();
        kernels::apply_diag_2q(
            &mut fast,
            hi,
            lo,
            kernels::diagonal_2q(&gate).expect("rzz is diagonal"),
        );
        kernels::reference::apply_2q(&mut generic, hi, lo, &gate.matrix().expect("bound"));
        prop_assert!(max_deviation(&fast, &generic) < 1e-12);
    }

    #[test]
    fn rz_diagonal_fast_path_matches_generic(
        theta in angle(),
        target in 0usize..6,
        seed in 0u64..1000,
    ) {
        let gate = Gate::Rz(Param::bound(theta));
        let mut fast = pseudo_random_amps(6, seed);
        let mut generic = fast.clone();
        kernels::apply_diag_1q(
            &mut fast,
            target,
            kernels::diagonal_1q(&gate).expect("rz is diagonal"),
        );
        kernels::reference::apply_1q(&mut generic, target, &gate.matrix().expect("bound"));
        prop_assert!(max_deviation(&fast, &generic) < 1e-12);
    }

    #[test]
    fn strided_dense_kernels_match_generic(
        theta in angle(),
        hi in 0usize..6,
        lo in 0usize..6,
        seed in 0u64..1000,
    ) {
        let (hi, lo) = if hi == lo { ((hi + 1) % 6, lo) } else { (hi, lo) };
        let rx = Gate::Rx(Param::bound(theta)).matrix().expect("bound");
        let rzx = Gate::Rzx(Param::bound(theta)).matrix().expect("bound");
        let mut fast = pseudo_random_amps(6, seed);
        let mut generic = fast.clone();
        kernels::apply_dense_1q(&mut fast, lo, &rx);
        kernels::apply_dense_2q(&mut fast, hi, lo, &rzx);
        kernels::reference::apply_1q(&mut generic, lo, &rx);
        kernels::reference::apply_2q(&mut generic, hi, lo, &rzx);
        prop_assert!(max_deviation(&fast, &generic) < 1e-12);
    }

    #[test]
    fn qasm_round_trips_random_circuits(seed in 0u64..300) {
        // Random circuit -> QASM text -> circuit must be lossless.
        let mut qc = Circuit::new(4);
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for _ in 0..15 {
            match next() % 5 {
                0 => { qc.h(next() % 4); }
                1 => { qc.rx(next() % 4, (next() % 628) as f64 / 100.0 - 3.0); }
                2 => {
                    let a = next() % 4;
                    qc.cx(a, (a + 1 + next() % 3) % 4);
                }
                3 => {
                    let a = next() % 4;
                    qc.rzz(a, (a + 1 + next() % 3) % 4, (next() % 628) as f64 / 100.0);
                }
                _ => { qc.rz(next() % 4, (next() % 628) as f64 / 100.0 - 3.0); }
            }
        }
        qc.measure_all();
        let text = hybrid_gate_pulse::circuit::qasm::to_qasm(&qc).expect("bound");
        let back = hybrid_gate_pulse::circuit::qasm::from_qasm(&text).expect("parses");
        prop_assert_eq!(qc.instructions(), back.instructions());
    }
}

#[test]
fn parallel_chunked_path_matches_generic_at_20_qubits() {
    // Force multiple rayon workers so the chunked kernels actually fan
    // out even on a single-core CI host, then pin them against the
    // sequential generic path on a 20-qubit register.
    //
    // The vendored rayon reads RAYON_NUM_THREADS on every call, so a
    // post-startup override takes effect (with the real rayon this
    // would be a no-op after pool init — the multicore path would then
    // be exercised by the host's own parallelism instead). The guard
    // restores any pre-existing value even if the assertion panics; no
    // other test in this binary reads the variable.
    struct RestoreEnv(Option<String>);
    impl Drop for RestoreEnv {
        fn drop(&mut self) {
            match self.0.take() {
                Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
                None => std::env::remove_var("RAYON_NUM_THREADS"),
            }
        }
    }
    let _restore = RestoreEnv(std::env::var("RAYON_NUM_THREADS").ok());
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let n = 20;
    let gates = [
        (Gate::Rz(Param::bound(0.37)), vec![17usize]),
        (Gate::Rzz(Param::bound(-1.1)), vec![19, 2]),
        (Gate::Rx(Param::bound(0.8)), vec![0]),
        (Gate::Rx(Param::bound(-0.45)), vec![19]),
        (Gate::Rzx(Param::bound(0.62)), vec![3, 18]),
        (Gate::CZ, vec![9, 10]),
    ];
    let mut fast = pseudo_random_amps(n, 42);
    let mut generic = fast.clone();
    for (gate, qubits) in &gates {
        match qubits.len() {
            1 => {
                if let Some(d) = kernels::diagonal_1q(gate) {
                    kernels::apply_diag_1q(&mut fast, qubits[0], d);
                } else {
                    kernels::apply_dense_1q(&mut fast, qubits[0], &gate.matrix().unwrap());
                }
                kernels::reference::apply_1q(&mut generic, qubits[0], &gate.matrix().unwrap());
            }
            _ => {
                if let Some(d) = kernels::diagonal_2q(gate) {
                    kernels::apply_diag_2q(&mut fast, qubits[0], qubits[1], d);
                } else {
                    kernels::apply_dense_2q(
                        &mut fast,
                        qubits[0],
                        qubits[1],
                        &gate.matrix().unwrap(),
                    );
                }
                kernels::reference::apply_2q(
                    &mut generic,
                    qubits[0],
                    qubits[1],
                    &gate.matrix().unwrap(),
                );
            }
        }
    }
    assert!(max_deviation(&fast, &generic) < 1e-12);
}

#[test]
fn unitarity_of_entire_gate_set() {
    // Not random, but exhaustive over the fixed gate set — kept here with
    // the property suite for discoverability.
    let gates = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::SX,
        Gate::CX,
        Gate::CZ,
        Gate::Swap,
    ];
    for g in gates {
        assert!(g.matrix().expect("bound").is_unitary(1e-12), "{g}");
    }
    let _ = Matrix::identity(2);
}
