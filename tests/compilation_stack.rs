//! Integration tests of the compilation stack: gate circuits, the
//! transpiler, and pulse lowering must agree on semantics across crates.

use hybrid_gate_pulse::circuit::Circuit;
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::pulse::calibration::PulseLibrary;
use hybrid_gate_pulse::pulse::propagator::schedule_unitary;
use hybrid_gate_pulse::sim::StateVector;
use hybrid_gate_pulse::transpile::{TranspileOptions, Transpiler};

/// A small QAOA-shaped circuit on logical qubits.
fn test_circuit(n: usize) -> Circuit {
    let mut qc = Circuit::new(n);
    for q in 0..n {
        qc.h(q);
    }
    for q in 0..n - 1 {
        qc.rzz(q, q + 1, 0.37);
    }
    for q in 0..n {
        qc.rx(q, 0.81);
    }
    qc
}

#[test]
fn transpiled_circuit_is_executable_as_pulses() {
    // logical circuit -> SABRE routing -> pulse lowering, and the result
    // must still be one coherent schedule (no uncoupled gates).
    let backend = Backend::ibmq_guadalupe();
    let qc = test_circuit(5);
    let out = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
    let lib = PulseLibrary::new(&backend);
    let schedule = lib
        .circuit_to_schedule(&out.circuit)
        .expect("routed circuits always lower");
    assert!(schedule.count_physical_pulses() > 0);
    assert!(schedule.duration() > 0);
}

#[test]
fn pulse_lowering_preserves_distribution_on_small_circuit() {
    // Lower a 3-qubit circuit to pulses on an ideal backend and compare
    // the full unitary's output distribution against the gate semantics.
    let backend = Backend::ideal(3);
    let mut qc = Circuit::new(3);
    qc.h(0).cx(0, 1).rzz(1, 2, 0.6).rx(2, 1.1).cx(2, 0);
    let lib = PulseLibrary::new(&backend);
    let schedule = lib.circuit_to_schedule(&qc).expect("coupled");
    let u = schedule_unitary(&schedule, &backend, &[0, 1, 2]).expect("well-formed");
    let ideal = qc.unitary().expect("bound");
    assert!(
        u.approx_eq_up_to_phase(&ideal, 1e-6),
        "pulse lowering drifted from gate semantics"
    );
}

#[test]
fn routed_distribution_matches_logical_distribution() {
    // On an ideal (noise-free, fully coupled at pulse level... here we
    // use a line so routing must insert SWAPs) device, the routed
    // circuit's measured distribution equals the logical one after
    // undoing the final layout.
    let backend = Backend::ideal(4);
    let qc = test_circuit(4);
    let logical = StateVector::from_circuit(&qc).expect("bound");
    let out = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
    let routed = StateVector::from_circuit(&out.circuit).expect("bound");
    // Compare per-logical-basis-state probabilities through the layouts.
    for b in 0..(1usize << 4) {
        // Map logical state b through the initial layout to a physical
        // input index; instead compare output marginals: physical state
        // decoded through the final layout.
        let mut expected = 0.0;
        let mut got = 0.0;
        for phys in 0..(1usize << 4) {
            let mut decoded = 0usize;
            for p in 0..4 {
                if (phys >> p) & 1 == 1 {
                    if let Some(l) = out.final_layout.logical(p) {
                        decoded |= 1 << l;
                    }
                }
            }
            if decoded == b {
                got += routed.probability(phys);
            }
        }
        expected += logical.probability(b);
        assert!(
            (got - expected).abs() < 1e-9,
            "distribution mismatch at {b:04b}: {got} vs {expected}"
        );
    }
}

#[test]
fn qasm_export_of_transpiled_circuit_round_trips_gate_count() {
    let backend = Backend::ibmq_guadalupe();
    let qc = test_circuit(4);
    let out = Transpiler::new(&backend).run(&qc, &TranspileOptions::default());
    let bound = out.circuit.clone();
    let qasm = hybrid_gate_pulse::circuit::qasm::to_qasm(&bound).expect("bound");
    // Every gate instruction appears as one QASM statement.
    let stmt_count = qasm
        .lines()
        .filter(|l| {
            !l.starts_with("OPENQASM")
                && !l.starts_with("include")
                && !l.starts_with("qreg")
                && !l.starts_with("creg")
                && !l.starts_with("gate ")
                && !l.is_empty()
        })
        .count();
    assert_eq!(stmt_count, bound.count_gates());
}
