//! Cross-crate integration tests: whole pipelines from graph to
//! approximation ratio.

use hybrid_gate_pulse::core::models::{GateModel, GateModelOptions, HybridModel, VqaModel};
use hybrid_gate_pulse::device::Backend;
use hybrid_gate_pulse::graph::instances;
use hybrid_gate_pulse::prelude::*;

fn quick_config() -> TrainConfig {
    TrainConfig {
        max_evals: 10,
        shots: 512,
        final_shots: 4096,
        ..TrainConfig::default()
    }
}

#[test]
fn gate_pipeline_end_to_end() {
    // graph -> QAOA -> route -> noisy sim -> counts -> AR.
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let model = GateModel::new(
        &backend,
        &graph,
        1,
        vec![1, 2, 3, 4, 5, 7],
        GateModelOptions::optimized(),
    )
    .expect("connected region");
    let result = train(&model, &graph, &quick_config());
    assert!(result.approximation_ratio > 0.40);
    assert!(result.approximation_ratio < 1.0);
    assert_eq!(result.mixer_duration_dt, 320);
}

#[test]
fn hybrid_pipeline_end_to_end_with_all_steps() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let mut config = PipelineConfig::full(1, vec![1, 2, 3, 4, 5, 7]);
    config.train = quick_config();
    config.duration_tolerance = 0.05;
    let out = run_pipeline(&backend, &graph, &config).expect("valid region");
    assert!(out.result.approximation_ratio > 0.40);
    assert!(out.mixer_duration_dt <= 320);
    let search = out.duration_search.expect("step I ran");
    assert_eq!(search.best_duration_dt % 32, 0);
}

#[test]
fn hybrid_beats_gate_on_toronto_task1() {
    // The paper's headline ordering, at the full paper budget. This is
    // the repository's reproduction smoke test.
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let region = vec![1, 2, 3, 4, 5, 7];
    let config = TrainConfig::default();
    let gate = GateModel::new(&backend, &graph, 1, region.clone(), GateModelOptions::raw())
        .expect("region");
    let hybrid = HybridModel::new(&backend, &graph, 1, region).expect("region");
    let r_gate = train(&gate, &graph, &config);
    let r_hybrid = train(&hybrid, &graph, &config);
    assert!(
        r_hybrid.expectation_ar > r_gate.expectation_ar + 0.01,
        "hybrid {:.3} must beat gate {:.3}",
        r_hybrid.expectation_ar,
        r_gate.expectation_ar
    );
}

#[test]
fn cvar_dominates_expectation_everywhere() {
    let backend = Backend::ibmq_guadalupe();
    let graph = instances::task2_random_6();
    let region = vec![0, 1, 2, 3, 4, 5];
    let model = HybridModel::new(&backend, &graph, 1, region).expect("region");
    let plain = train(&model, &graph, &quick_config());
    let mut cvar_cfg = quick_config();
    cvar_cfg.cvar_alpha = Some(0.3);
    let cvar = train(&model, &graph, &cvar_cfg);
    assert!(cvar.approximation_ratio >= plain.approximation_ratio - 0.02);
}

#[test]
fn all_three_tasks_run_on_both_montreal_and_toronto() {
    for backend in [Backend::ibmq_toronto(), Backend::ibmq_montreal()] {
        for (name, graph, _) in instances::all_tasks() {
            let n = graph.n_nodes();
            let region: Vec<usize> = if n == 6 {
                vec![1, 2, 3, 4, 5, 7]
            } else {
                vec![1, 2, 3, 4, 5, 7, 8, 10]
            };
            let model = HybridModel::new(&backend, &graph, 1, region).expect("region");
            let mut config = quick_config();
            config.max_evals = 4;
            config.shots = 256;
            config.final_shots = 1024;
            let result = train(&model, &graph, &config);
            assert!(
                result.approximation_ratio > 0.3,
                "{name} on {} gave AR {}",
                backend.name(),
                result.approximation_ratio
            );
        }
    }
}

#[test]
fn deeper_qaoa_builds_and_trains() {
    let backend = Backend::ibmq_toronto();
    let graph = instances::task1_three_regular_6();
    let model = HybridModel::new(&backend, &graph, 2, vec![1, 2, 3, 4, 5, 7]).expect("region");
    assert_eq!(model.n_params(), 2 * (2 + 12));
    let mut config = quick_config();
    config.max_evals = 4;
    let result = train(&model, &graph, &config);
    assert!(result.approximation_ratio > 0.2);
}
