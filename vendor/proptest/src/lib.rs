//! Offline stand-in for `proptest`: the subset the workspace's property
//! suite uses.
//!
//! The build container has no registry access, so the real `proptest`
//! cannot be fetched. This crate keeps the call-site surface of the
//! tests — `proptest! { #![proptest_config(..)] #[test] fn f(x in
//! strategy) {..} }`, range strategies, `prop_assert!` — so the suite
//! runs unchanged. There is no shrinking: a failing case reports its
//! inputs and panics immediately, which is enough for CI triage.

// The `proptest!` doc example necessarily shows `#[test]` inside a
// doctest; the macro is exercised for real in `tests/property_tests.rs`.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-suite configuration (`with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies (deterministic per property name).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property.
#[doc(hidden)]
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs, distinct per test.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut TestRng) -> i32 {
        rng.gen_range(self.start..self.end)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0.0f64..10.0, b in 0.0f64..10.0) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property {} failed at case {case}:\n  {message}\n  inputs: {}",
                        stringify!($name),
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", "),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}
