//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so the real `rand` cannot
//! be fetched. This crate reimplements exactly the surface the workspace
//! uses — [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`] — with the same
//! module layout, so swapping the real crate back in is a manifest-only
//! change. Streams differ from upstream `StdRng` (which is a ChaCha
//! cipher); everything in the workspace only relies on determinism per
//! seed, not on a specific stream.
//!
//! The generator is SplitMix64: a 64-bit state advanced by a Weyl
//! increment and finalized with two xor-shift-multiply rounds. It passes
//! the statistical checks the workspace's tests make (frequency tests at
//! the 1e-2 level over tens of thousands of draws).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`; `bool`: fair coin; integers: uniform
    /// over the full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open `lo..hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling to kill modulo bias.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, i64, i32);

/// Seedable generators (`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // Discard the first output so nearby seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher-Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A generator seeded from system entropy (address-space layout and
/// time); used by code that wants a fresh stream per process.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let marker: u64 = &t as *const _ as u64;
    SeedableRng::seed_from_u64(t ^ marker.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_is_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
        let in_range = (0..n)
            .map(|_| rng.gen::<f64>())
            .all(|v| (0.0..1.0).contains(&v));
        assert!(in_range);
    }

    #[test]
    fn bools_are_fair_enough() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 1e5 - 0.5).abs() < 5e-3, "heads = {heads}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&v));
            let i: usize = rng.gen_range(0..7);
            assert!(i < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move things");
    }
}
