//! Offline stand-in for `rayon`: the data-parallel subset the workspace
//! uses, implemented on `std::thread::scope`.
//!
//! The build container has no registry access, so the real `rayon`
//! cannot be fetched. This crate keeps rayon's call-site shapes —
//! `par_iter().map(..).collect()`, `par_chunks_mut(..).for_each(..)`,
//! [`join`] — so swapping the real crate back in is a manifest-only
//! change. There is no work-stealing pool: each parallel call splits its
//! input into contiguous blocks, one per available hardware thread, and
//! runs them on scoped threads. On a single-core host everything runs
//! inline with zero thread overhead.

use std::num::NonZeroUsize;

/// Number of worker threads parallel calls fan out to.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Runs `f(i)` for every `i` in `0..n`, distributing contiguous index
/// blocks over the worker threads, and returns the results in order.
fn map_indexed<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let block = n.div_ceil(workers);
    let mut out: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * block;
            let hi = ((w + 1) * block).min(n);
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<U>>()));
        }
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Runs `f(state, i)` for every `i` in `0..n`, where each worker thread
/// builds its own `state` with `init` once and reuses it across its
/// contiguous index block (rayon's `map_init` contract: one state per
/// split, shared by nothing else). Results come back in order.
fn map_init_indexed<S, U, INIT, F>(n: usize, init: INIT, f: F) -> Vec<U>
where
    S: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let block = n.div_ceil(workers);
    let mut out: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * block;
            let hi = ((w + 1) * block).min(n);
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<U>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Rayon-style traits and adapters; `use rayon::prelude::*` as usual.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

pub mod iter {
    use super::{current_num_threads, map_indexed, map_init_indexed};

    /// Eager stand-in for rayon's lazy `ParallelIterator`.
    ///
    /// Adapters collect into an ordered `Vec` under the hood; only the
    /// `map`/`for_each`/`sum`/`collect` combinators the workspace uses
    /// are provided.
    pub struct ParallelIterator<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator<T> {
        /// Applies `f` to every element in parallel, preserving order.
        pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParallelIterator<U>
        where
            T: Sync,
        {
            // Move items into cells so worker threads can take them by index.
            let cells: Vec<std::sync::Mutex<Option<T>>> = self
                .items
                .into_iter()
                .map(|t| std::sync::Mutex::new(Some(t)))
                .collect();
            let out = map_indexed(cells.len(), |i| {
                let item = cells[i]
                    .lock()
                    .expect("parallel map cell poisoned")
                    .take()
                    .expect("parallel map cell taken twice");
                f(item)
            });
            ParallelIterator { items: out }
        }

        /// Applies `f` to every element in parallel, preserving order,
        /// threading a per-worker state built by `init` through each
        /// worker's contiguous run of elements (rayon's `map_init`).
        pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParallelIterator<U>
        where
            T: Sync,
            S: Send,
            U: Send,
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, T) -> U + Sync,
        {
            let cells: Vec<std::sync::Mutex<Option<T>>> = self
                .items
                .into_iter()
                .map(|t| std::sync::Mutex::new(Some(t)))
                .collect();
            let out = map_init_indexed(cells.len(), init, |state, i| {
                let item = cells[i]
                    .lock()
                    .expect("parallel map cell poisoned")
                    .take()
                    .expect("parallel map cell taken twice");
                f(state, item)
            });
            ParallelIterator { items: out }
        }

        /// Runs `f` on every element in parallel.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F)
        where
            T: Sync,
        {
            let _ = self.map(f);
        }

        /// Collects the (already ordered) results.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            self.items.into_iter().collect()
        }

        /// Sums the elements.
        pub fn sum<S: std::iter::Sum<T>>(self) -> S {
            self.items.into_iter().sum()
        }

        /// Pairs each element with its index.
        pub fn enumerate(self) -> ParallelIterator<(usize, T)> {
            ParallelIterator {
                items: self.items.into_iter().enumerate().collect(),
            }
        }
    }

    /// Conversion into a parallel iterator (owning).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Builds the iterator.
        fn into_par_iter(self) -> ParallelIterator<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParallelIterator<T> {
            ParallelIterator { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParallelIterator<usize> {
            ParallelIterator {
                items: self.collect(),
            }
        }
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: Send + 'a;
        /// Builds the iterator.
        fn par_iter(&'a self) -> ParallelIterator<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParallelIterator<&'a T> {
            ParallelIterator {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParallelIterator<&'a T> {
            ParallelIterator {
                items: self.iter().collect(),
            }
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into chunks of `chunk_size` (last may be shorter) and
        /// returns a parallel adapter over them.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                chunks: self.chunks_mut(chunk_size).collect(),
            }
        }
    }

    /// Parallel adapter over mutable chunks of a slice.
    pub struct ParChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Runs `f` on every chunk, in parallel when workers are available.
        pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
            self.enumerate().for_each(move |(_, chunk)| f(chunk));
        }

        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
            EnumeratedChunksMut {
                chunks: self.chunks,
            }
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct EnumeratedChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<T: Send> EnumeratedChunksMut<'_, T> {
        /// Runs `f` on every `(index, chunk)` pair, in parallel when
        /// workers are available.
        pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
            let workers = current_num_threads().min(self.chunks.len().max(1));
            if workers <= 1 {
                for (i, chunk) in self.chunks.into_iter().enumerate() {
                    f((i, chunk));
                }
                return;
            }
            let n = self.chunks.len();
            let block = n.div_ceil(workers);
            let mut batches: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
            let mut current = Vec::with_capacity(block);
            for pair in self.chunks.into_iter().enumerate() {
                current.push(pair);
                if current.len() == block {
                    batches.push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                batches.push(current);
            }
            std::thread::scope(|scope| {
                for batch in batches {
                    let f = &f;
                    scope.spawn(move || {
                        for pair in batch {
                            f(pair);
                        }
                    });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_collects() {
        let squares: Vec<u64> = (0..100usize)
            .into_par_iter()
            .map(|i| (i * i) as u64)
            .collect();
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn par_chunks_mut_touches_every_element() {
        let mut v = vec![1.0f64; 4096];
        v.par_chunks_mut(256).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += i as f64;
            }
        });
        let expect: f64 = (0..16).map(|i| 256.0 * (1.0 + i as f64)).sum();
        assert!((v.iter().sum::<f64>() - expect).abs() < 1e-9);
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        let outs: Vec<(usize, usize)> = (0..1000usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    (i, *calls)
                },
            )
            .collect();
        assert!(outs.iter().enumerate().all(|(k, (i, _))| *i == k));
        // Workers own contiguous blocks of >= 2 items, so at least one
        // state is reused.
        assert!(outs.iter().any(|(_, c)| *c > 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }
}
