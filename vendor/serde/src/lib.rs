//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no access to the crates.io
//! registry, so the real `serde` cannot be fetched. The workspace only
//! uses `serde` as `#[derive(Serialize, Deserialize)]` annotations on
//! data types — nothing serializes through the serde data model yet — so
//! this stand-in provides the two trait names (satisfied by a blanket
//! impl) and re-exports the no-op derives from `serde_derive`.
//!
//! Swapping in the real serde later is a manifest-only change: the
//! annotations in the workspace are already the real ones.

/// Marker for serializable types. Blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
