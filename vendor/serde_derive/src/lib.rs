//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace vendors a minimal `serde` substitute (see
//! `vendor/serde`) so crates can keep their `#[derive(Serialize,
//! Deserialize)]` annotations without a network dependency. Nothing in
//! the workspace consumes the serde data model, so the derives expand to
//! nothing: the traits are implemented for every type by a blanket impl
//! in the `serde` facade crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
