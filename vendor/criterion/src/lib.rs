//! Offline stand-in for `criterion`: the benchmarking surface the
//! workspace's benches use, measured with `std::time::Instant`.
//!
//! The build container has no registry access, so the real `criterion`
//! cannot be fetched. This harness keeps the same call sites —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — so swapping the real
//! crate back in is a manifest-only change. Instead of criterion's
//! statistical machinery it takes `sample_size` wall-clock samples of an
//! auto-calibrated iteration batch and reports the median, which is
//! stable enough for the workspace's "kernel A is Nx faster than kernel
//! B" acceptance checks.
//!
//! Results print to stdout and append as JSON lines to
//! `target/criterion-results.jsonl` (override with the
//! `CRITERION_OUTPUT` environment variable).

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the batch size so one sample
    /// takes on the order of 10ms, then recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it costs >= 2ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 24 {
                self.iters_per_sample = iters.max(1);
                break;
            }
            // Aim for ~10ms per sample.
            let scale = if dt.as_nanos() == 0 {
                16
            } else {
                (10_000_000 / dt.as_nanos().max(1) as u64).clamp(2, 16)
            };
            iters = iters.saturating_mul(scale);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Overrides how many timing samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and reports its median time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted[sorted.len() / 2]
        };
        let low = sorted.first().copied().unwrap_or(f64::NAN);
        let high = sorted.last().copied().unwrap_or(f64::NAN);
        println!(
            "{id:<40} median {:>12} /iter  (min {}, max {}, {} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(low),
            fmt_ns(high),
            bencher.samples.len(),
            bencher.iters_per_sample,
        );
        append_json(id, median, low, high, bencher.iters_per_sample);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn append_json(id: &str, median_ns: f64, min_ns: f64, max_ns: f64, iters: u64) {
    let path = std::env::var("CRITERION_OUTPUT")
        .unwrap_or_else(|_| "target/criterion-results.jsonl".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            file,
            "{{\"id\":\"{}\",\"median_ns\":{median_ns:.1},\"min_ns\":{min_ns:.1},\"max_ns\":{max_ns:.1},\"iters_per_sample\":{iters}}}",
            id.replace('"', "'"),
        );
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; this runner
            // has no options, but `--list` must answer for test discovery.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("CRITERION_OUTPUT", "target/criterion-selftest.jsonl");
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("selftest_sum", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(10.0), "10.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
